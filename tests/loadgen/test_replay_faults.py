"""Chaos end-to-end: a mid-replay shard kill must not lose a single request.

A mixed trace replays against a real 2-shard TCP cluster (in-process
listener threads, real localhost sockets — the same harness as
``tests/serve/test_tcp_transport.py``); at the midpoint the fault hook
kills one shard.  The supervisor's recovery machinery — reroute of the dead
shard's pending futures to ring successors, reconnect on the next dispatch
— must resolve every future, and the SLO report must show the fault and a
finite recovery window.
"""

import queue
import socket
import threading

import pytest

from repro.loadgen import (
    ReplayFault,
    TraceConfig,
    build_slo_report,
    generate_trace,
    replay,
)
from repro.loadgen.trace import ARRIVAL_CLOSED
from repro.serve import ShardSupervisor, serve_shard_tcp
from repro.serve import protocol


def _start_listener(shard_id):
    bound: queue.Queue = queue.Queue()
    thread = threading.Thread(
        target=serve_shard_tcp,
        kwargs=dict(
            host="127.0.0.1",
            port=0,
            shard_id=shard_id,
            workers=2,
            on_bound=bound.put,
        ),
        daemon=True,
    )
    thread.start()
    return bound.get(timeout=30), thread


def _shut_down_listener(address, thread):
    try:
        sock = socket.create_connection(address, timeout=5)
    except OSError:
        return  # already gone
    connection = protocol.StreamConnection(sock)
    try:
        connection.send_bytes(
            protocol.encode_message(
                protocol.HelloCall(
                    request_id=1,
                    protocol_version=protocol.PROTOCOL_VERSION,
                    shard_id=-1,
                    trust=protocol.TRUST_SOURCE,
                )
            )
        )
        connection.recv_bytes()
        connection.send_bytes(
            protocol.encode_message(protocol.ShutdownCall(request_id=2))
        )
    except (OSError, EOFError):
        pass
    finally:
        connection.close()
    thread.join(timeout=60)


@pytest.fixture
def tcp_cluster():
    listeners = [_start_listener(shard_id) for shard_id in range(2)]
    supervisor = ShardSupervisor(
        shards=0,
        devices=("rtx4090",),
        connect=tuple(address for address, _ in listeners),
    )
    try:
        yield supervisor
    finally:
        supervisor.close()
        for address, thread in listeners:
            _shut_down_listener(address, thread)


#: Small word-sized kernels keep the chaos replay fast; two suites so the
#: trace is genuinely mixed and families spread across both shards.
_TRACE_CONFIG = TraceConfig(
    suites=("rns_conversion", "small_prime_ntt"),
    seed=3,
    requests=24,
    arrival=ARRIVAL_CLOSED,
    clients=4,
)


def test_mid_replay_shard_kill_loses_nothing(tcp_cluster):
    supervisor = tcp_cluster
    trace = generate_trace(_TRACE_CONFIG)
    fired = []

    def kill_one_shard():
        # Kill whichever shard has taken traffic so the fault actually
        # lands in the serving path (routing is family-hashed, so one
        # shard can be cold on a small trace).
        routed = supervisor.routed_counts()
        victim = max(routed, key=lambda shard_id: routed[shard_id])
        supervisor.kill_shard(victim)
        fired.append(victim)

    result = replay(
        supervisor,
        trace,
        fault=ReplayFault(action=kill_one_shard, at_fraction=0.5),
    )

    assert fired, "the fault hook never fired"
    assert result.fault_at_s is not None
    # The acceptance property: a shard death mid-replay never loses a
    # request — every future resolved, every outcome was served.
    assert result.lost_requests == 0
    assert len(result.outcomes) == len(trace.events)
    assert all(outcome.ok for outcome in result.outcomes), [
        outcome for outcome in result.outcomes if not outcome.ok
    ]

    report = build_slo_report(result, cluster=supervisor.stats())
    assert report.lost == 0
    assert report.ok == len(trace.events)
    assert report.fault_at_s == result.fault_at_s
    # Recovery must be visible in the report: requests submitted after the
    # kill completed successfully within the replay.
    assert report.recovery_window_s is not None
    assert 0.0 <= report.recovery_window_s <= report.duration_s


def test_fault_hook_exceptions_abort_the_replay(tcp_cluster):
    trace = generate_trace(_TRACE_CONFIG)

    def broken_hook():
        raise RuntimeError("chaos hook is itself broken")

    with pytest.raises(RuntimeError, match="chaos hook"):
        replay(
            tcp_cluster,
            trace,
            fault=ReplayFault(action=broken_hook, at_fraction=0.0),
        )
