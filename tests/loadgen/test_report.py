"""The SLO reporter and the BENCH artifact's append-only merge discipline.

The BENCH file has three writers — pytest-benchmark's ``--benchmark-json``,
the perf-floor hook in ``benchmarks/conftest.py``, and the loadgen SLO
reporter — and the contract here is that the shared read-merge-write helper
lets each land without clobbering the others.
"""

import json

import pytest

from repro.loadgen import TraceConfig, build_slo_report, generate_trace
from repro.loadgen.replay import ReplayResult, RequestOutcome
from repro.loadgen.report import (
    append_loadgen_report,
    bench_artifact_path,
    merge_bench_payload,
)


def _outcome(position, *, ok=True, warm=False, missed=False, lost=False,
             error=None, submitted=0.0, completed=None, latency=0.010):
    return RequestOutcome(
        suite="rns_conversion",
        index=0,
        submitted_at_s=submitted,
        completed_at_s=completed if completed is not None else submitted + latency,
        latency_s=latency,
        ok=ok,
        warm=warm,
        deadline_missed=missed,
        error=error,
        lost=lost,
    )


def _result(outcomes, duration_s=1.0, fault_at_s=None):
    trace = generate_trace(TraceConfig(seed=1, requests=len(outcomes)))
    return ReplayResult(
        trace=trace,
        outcomes=tuple(outcomes),
        duration_s=duration_s,
        fault_at_s=fault_at_s,
    )


class TestSLOReport:
    def test_rates_and_percentiles(self):
        outcomes = [
            _outcome(position, warm=position >= 2, latency=(position + 1) / 100.0)
            for position in range(8)
        ] + [
            _outcome(8, ok=False, error="ServingError"),
            _outcome(9, ok=False, missed=True),
        ]
        report = build_slo_report(_result(outcomes, duration_s=2.0))
        assert report.requests == 10
        assert report.ok == 8
        assert report.errors == 1
        assert report.deadline_misses == 1
        assert report.lost == 0
        assert report.req_per_s == pytest.approx(5.0)
        assert report.warm_ratio == pytest.approx(6 / 8)
        assert report.error_rate == pytest.approx(0.1)
        assert report.deadline_miss_rate == pytest.approx(0.1)
        # Nearest-rank over the 8 served latencies 10..80 ms.
        assert report.p50_latency_ms == pytest.approx(50.0)
        assert report.p95_latency_ms == pytest.approx(80.0)
        assert report.p99_latency_ms == pytest.approx(80.0)

    def test_lost_requests_are_counted_apart_from_errors(self):
        report = build_slo_report(
            _result([_outcome(0), _outcome(1, ok=False, error="Timeout", lost=True)])
        )
        assert report.lost == 1
        assert report.errors == 0

    def test_recovery_window_spans_fault_to_first_post_fault_success(self):
        outcomes = [
            _outcome(0, submitted=0.0, completed=0.1),
            _outcome(1, submitted=0.4, completed=0.45),  # pre-fault submit
            _outcome(2, submitted=0.6, completed=0.9),
            _outcome(3, submitted=0.7, completed=0.8),  # earliest recovery
        ]
        report = build_slo_report(_result(outcomes, fault_at_s=0.5))
        assert report.fault_at_s == 0.5
        assert report.recovery_window_s == pytest.approx(0.3)

    def test_recovery_window_is_none_when_nothing_recovers(self):
        outcomes = [
            _outcome(0, submitted=0.0, completed=0.1),
            _outcome(1, submitted=0.6, completed=0.7, ok=False, error="Boom"),
        ]
        report = build_slo_report(_result(outcomes, fault_at_s=0.5))
        assert report.recovery_window_s is None
        assert "never recovered" in report.report()

    def test_payload_and_text_render(self):
        report = build_slo_report(_result([_outcome(0, warm=True)]))
        payload = report.to_payload()
        assert json.dumps(payload)  # JSON-serializable end to end
        assert payload["suites"] == list(report.suites)
        text = report.report()
        assert "replayed" in text and "latency" in text


class TestBenchArtifact:
    def test_append_preserves_pytest_benchmark_payload(self, tmp_path):
        target = tmp_path / "BENCH_abc.json"
        target.write_text(
            json.dumps({"benchmarks": [{"name": "test_floor"}], "version": "4.0"})
        )
        report = build_slo_report(_result([_outcome(0)]))
        append_loadgen_report(report, target)
        merge_bench_payload(target, "perf_floors", [{"name": "floor-entry"}])

        document = json.loads(target.read_text())
        assert document["benchmarks"] == [{"name": "test_floor"}]
        assert document["version"] == "4.0"
        assert len(document["loadgen_reports"]) == 1
        assert document["perf_floors"] == [{"name": "floor-entry"}]

    def test_appending_twice_grows_the_list(self, tmp_path):
        target = tmp_path / "BENCH_abc.json"
        report = build_slo_report(_result([_outcome(0)]))
        append_loadgen_report(report, target)
        append_loadgen_report(report, target)
        document = json.loads(target.read_text())
        assert len(document["loadgen_reports"]) == 2

    def test_non_object_file_is_preserved_aside(self, tmp_path):
        target = tmp_path / "BENCH_abc.json"
        target.write_text(json.dumps([1, 2, 3]))
        merge_bench_payload(target, "loadgen_reports", [{"seed": 0}])
        document = json.loads(target.read_text())
        assert document["previous"] == [1, 2, 3]
        assert document["loadgen_reports"] == [{"seed": 0}]

    def test_artifact_path_uses_the_ci_sha(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "deadbeef")
        path = bench_artifact_path(directory=tmp_path)
        assert path == tmp_path / "BENCH_deadbeef.json"
