"""The loadgen tenant dimension: spec parsing, traces, replay, SLO blocks.

`--tenants a:0.7,b:0.3@250/fhe_pipeline+rns_conversion` attributes every
trace event to a weighted tenant (optionally with a per-tenant deadline
and suite mix).  The properties here: an untenanted config generates
byte-identical traces to a pre-tenant build, tenants survive a trace
round-trip, replay forwards the tenant only when non-default (so
pre-tenant server stand-ins keep working), and the SLO report breaks out
per-tenant blocks including quota rejections.
"""

import json
from concurrent.futures import Future
from types import SimpleNamespace

import pytest

from repro.errors import LoadGenError
from repro.loadgen import (
    TenantLoad,
    TraceConfig,
    build_slo_report,
    generate_trace,
    parse_tenants,
    replay,
)
from repro.loadgen.replay import ReplayResult, RequestOutcome
from repro.loadgen.trace import load_trace, save_trace
from repro.tenancy import DEFAULT_TENANT

TWO_TENANTS = parse_tenants("a:0.7,b:0.3")


class TestParseTenants:
    def test_full_spec(self):
        loads = parse_tenants("a:0.7,b:0.3@250/fhe_pipeline+rns_conversion")
        assert loads == (
            TenantLoad(name="a", weight=0.7),
            TenantLoad(
                name="b",
                weight=0.3,
                deadline_ms=250.0,
                suites=("fhe_pipeline", "rns_conversion"),
            ),
        )

    def test_weight_defaults_to_one(self):
        assert parse_tenants("a,b") == (TenantLoad("a"), TenantLoad("b"))

    @pytest.mark.parametrize(
        "spec",
        [
            "",  # no tenants at all
            "a,a",  # duplicate name
            "a::b:1",  # invalid tenant id
            "a:0",  # non-positive weight
            "a:x",  # unparsable weight
            "a@0",  # non-positive deadline
            "a/no_such_suite",  # unknown suite
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(LoadGenError):
            parse_tenants(spec)


class TestTenantedTraces:
    def test_untenanted_trace_has_no_tenant_keys(self):
        # Byte-compat with pre-tenant builds: an empty tenants config must
        # not perturb the rng draw sequence or the serialized payload.
        trace = generate_trace(TraceConfig(seed=7, requests=32))
        assert b'"tenant"' not in trace.serialize()
        assert all(event.tenant == DEFAULT_TENANT for event in trace.events)

    def test_tenanted_trace_round_trips(self, tmp_path):
        config = TraceConfig(seed=11, requests=48, tenants=TWO_TENANTS)
        trace = generate_trace(config)
        assert trace.tenants_used == ("a", "b")
        path = save_trace(tmp_path / "trace.json", trace)
        loaded = load_trace(path)
        assert loaded == trace
        assert loaded.serialize() == trace.serialize()

    def test_same_seed_is_deterministic_with_tenants(self):
        config = TraceConfig(seed=3, requests=64, tenants=TWO_TENANTS)
        assert generate_trace(config).serialize() == generate_trace(config).serialize()

    def test_per_tenant_deadline_and_suites_apply(self):
        loads = parse_tenants("a:1,b:1@250/rns_conversion")
        trace = generate_trace(TraceConfig(seed=5, requests=64, tenants=loads))
        b_events = [event for event in trace.events if event.tenant == "b"]
        assert b_events, "weighted draw never picked tenant b"
        assert all(event.deadline_ms == 250.0 for event in b_events)
        assert all(event.suite == "rns_conversion" for event in b_events)

    def test_corrupt_tenant_in_trace_file_is_rejected(self, tmp_path):
        trace = generate_trace(TraceConfig(seed=1, requests=4, tenants=TWO_TENANTS))
        payload = json.loads(trace.serialize())
        payload["events"][0]["tenant"] = "a::b"
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(LoadGenError, match="tenant"):
            load_trace(path)


class _PreTenantServer:
    """A pre-tenant serving stand-in: submit() has no tenant parameter."""

    def submit(self, request, deadline_ms=None):
        future: Future = Future()
        future.set_result(SimpleNamespace(warm=True))
        return future


class _TenantAwareServer:
    def __init__(self):
        self.tenants = []

    def submit(self, request, deadline_ms=None, tenant=DEFAULT_TENANT):
        self.tenants.append(tenant)
        future: Future = Future()
        future.set_result(SimpleNamespace(warm=True))
        return future


class TestReplayTenantForwarding:
    def test_untenanted_trace_replays_against_pre_tenant_servers(self):
        trace = generate_trace(TraceConfig(seed=1, requests=8, rate_rps=10_000.0))
        result = replay(_PreTenantServer(), trace)
        assert all(outcome.ok for outcome in result.outcomes)
        assert all(o.tenant == DEFAULT_TENANT for o in result.outcomes)

    def test_tenanted_trace_forwards_the_tenant(self):
        trace = generate_trace(
            TraceConfig(seed=1, requests=16, rate_rps=10_000.0, tenants=TWO_TENANTS)
        )
        server = _TenantAwareServer()
        result = replay(server, trace)
        assert sorted(set(server.tenants)) == ["a", "b"]
        assert sorted({o.tenant for o in result.outcomes}) == ["a", "b"]


def _outcome(tenant, *, ok=True, warm=False, missed=False, error=None,
             latency=0.010):
    return RequestOutcome(
        suite="rns_conversion",
        index=0,
        submitted_at_s=0.0,
        completed_at_s=latency,
        latency_s=latency,
        ok=ok,
        warm=warm,
        deadline_missed=missed,
        error=error,
        lost=False,
        tenant=tenant,
    )


class TestPerTenantSLOBlocks:
    def _report(self, outcomes):
        trace = generate_trace(TraceConfig(seed=1, requests=len(outcomes)))
        return build_slo_report(
            ReplayResult(trace=trace, outcomes=tuple(outcomes), duration_s=1.0)
        )

    def test_untenanted_run_has_no_tenant_section(self):
        report = self._report([_outcome(DEFAULT_TENANT) for _ in range(4)])
        assert report.tenants is None
        assert report.to_payload()["tenants"] is None
        assert "tenant " not in report.report()

    def test_blocks_split_by_tenant_and_count_quota_rejections(self):
        outcomes = (
            [_outcome("a", warm=True, latency=0.010) for _ in range(3)]
            + [_outcome("a", ok=False, error="QuotaExceededError")]
            + [_outcome("b", latency=0.050)]
            + [_outcome("b", ok=False, missed=True, error="DeadlineExceededError")]
        )
        report = self._report(outcomes)
        assert set(report.tenants) == {"a", "b"}
        block_a, block_b = report.tenants["a"], report.tenants["b"]
        assert block_a["requests"] == 4
        assert block_a["ok"] == 3
        assert block_a["quota_rejections"] == 1
        assert block_a["warm_ratio"] == pytest.approx(1.0)
        assert block_a["p95_latency_ms"] == pytest.approx(10.0)
        assert block_b["quota_rejections"] == 0
        assert block_b["deadline_misses"] == 1
        # And the blocks ride the BENCH artifact payload + text report.
        payload = report.to_payload()
        assert payload["tenants"]["a"]["quota_rejections"] == 1
        assert "tenant a" in report.report()
