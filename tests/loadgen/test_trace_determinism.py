"""Determinism properties of the trace generator and replay hot path.

The properties that make "replay" mean something:

* the same seed + config generates **byte-identical** serialized traces;
* different seeds generate different traces;
* the replay engine itself never calls into the ``random`` module — the
  generator's seeded local instance is the harness's only RNG.
"""

from concurrent.futures import Future
from types import SimpleNamespace

import pytest

from repro.errors import LoadGenError
from repro.loadgen import (
    ReplayFault,
    Trace,
    TraceConfig,
    generate_trace,
    get_suite,
    replay,
    resolve_mix,
    suite_names,
)
from repro.loadgen.trace import ARRIVAL_CLOSED, ARRIVAL_OPEN, load_trace, save_trace


class TestDeterminism:
    def test_same_seed_serializes_byte_identically(self):
        config = TraceConfig(seed=7, requests=64)
        first = generate_trace(config).serialize()
        second = generate_trace(config).serialize()
        assert first == second

    @pytest.mark.parametrize("arrival", [ARRIVAL_OPEN, ARRIVAL_CLOSED])
    def test_every_config_field_survives_a_round_trip(self, tmp_path, arrival):
        config = TraceConfig(
            suites=("fhe_pipeline", "rns_conversion"),
            seed=11,
            requests=32,
            arrival=arrival,
            deadline_ms=250.0,
        )
        trace = generate_trace(config)
        path = tmp_path / "trace.json"
        save_trace(path, trace)
        loaded = load_trace(path)
        assert loaded == trace
        assert loaded.serialize() == trace.serialize()

    def test_different_seeds_differ(self):
        base = TraceConfig(requests=64)
        traces = {
            generate_trace(TraceConfig(seed=seed, requests=base.requests)).serialize()
            for seed in range(5)
        }
        assert len(traces) == 5

    def test_generation_does_not_disturb_global_random(self):
        import random

        random.seed(123)
        expected = random.random()
        random.seed(123)
        generate_trace(TraceConfig(seed=7, requests=32))
        assert random.random() == expected

    def test_open_loop_schedule_is_the_fixed_rate_grid(self):
        trace = generate_trace(TraceConfig(requests=10, rate_rps=100.0))
        assert [event.at_ms for event in trace.events] == [
            pytest.approx(position * 10.0) for position in range(10)
        ]

    def test_closed_loop_events_carry_no_timestamps(self):
        trace = generate_trace(
            TraceConfig(requests=10, arrival=ARRIVAL_CLOSED, clients=3)
        )
        assert all(event.at_ms is None for event in trace.events)
        assert trace.clients == 3

    def test_mixed_default_draws_from_several_suites(self):
        trace = generate_trace(TraceConfig(seed=7, requests=48))
        assert len(trace.suites_used) >= 3


class _InstantServer:
    """A fake serving tier: every submit resolves immediately, warm."""

    def __init__(self):
        self.submitted = 0

    def submit(self, request, deadline_ms=None):
        self.submitted += 1
        future: Future = Future()
        future.set_result(SimpleNamespace(warm=True))
        return future


#: Every public callable of the ``random`` module that draws from the
#: hidden global instance; the replay hot path may touch none of them.
_GLOBAL_RANDOM_FUNCTIONS = (
    "random",
    "randrange",
    "randint",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "expovariate",
    "betavariate",
    "seed",
)


class TestReplayHotPathPurity:
    @pytest.mark.parametrize("arrival", [ARRIVAL_OPEN, ARRIVAL_CLOSED])
    def test_replay_never_calls_the_random_module(self, monkeypatch, arrival):
        import random

        trace = generate_trace(
            TraceConfig(
                seed=3, requests=12, arrival=arrival, rate_rps=10_000.0, clients=3
            )
        )

        def _forbidden(*_args, **_kwargs):
            raise AssertionError(
                "the replay hot path called into the random module"
            )

        for name in _GLOBAL_RANDOM_FUNCTIONS:
            monkeypatch.setattr(random, name, _forbidden)

        server = _InstantServer()
        result = replay(server, trace)
        assert server.submitted == 12
        assert result.lost_requests == 0
        assert all(outcome.ok for outcome in result.outcomes)

    def test_replay_outcomes_keep_event_order(self):
        trace = generate_trace(
            TraceConfig(seed=5, requests=8, arrival=ARRIVAL_CLOSED, clients=4)
        )
        result = replay(_InstantServer(), trace)
        assert [
            (outcome.suite, outcome.index) for outcome in result.outcomes
        ] == [(event.suite, event.index) for event in trace.events]


class TestValidation:
    def test_unknown_suite_is_refused(self):
        with pytest.raises(LoadGenError, match="unknown workload suite"):
            generate_trace(TraceConfig(suites=("nope",), requests=4))

    def test_unknown_arrival_is_refused(self):
        with pytest.raises(LoadGenError, match="arrival"):
            generate_trace(TraceConfig(arrival="sorta-open", requests=4))

    def test_empty_trace_is_refused(self):
        with pytest.raises(LoadGenError):
            generate_trace(TraceConfig(requests=0))

    def test_version_mismatch_is_refused(self):
        payload = generate_trace(TraceConfig(requests=4)).to_payload()
        payload["version"] = 99
        with pytest.raises(LoadGenError, match="version"):
            Trace.from_payload(payload)

    def test_dangling_spec_reference_is_refused(self):
        payload = generate_trace(TraceConfig(requests=4)).to_payload()
        payload["events"][0]["index"] = 10_000
        with pytest.raises(LoadGenError, match="spec"):
            Trace.from_payload(payload)

    def test_mix_weights_accumulate(self):
        mix = resolve_mix(("fhe_pipeline", "fhe_pipeline", "rns_conversion"))
        assert mix == {"fhe_pipeline": 2.0, "rns_conversion": 1.0}

    def test_mixed_expands_to_every_suite(self):
        assert set(resolve_mix(("mixed",))) == set(suite_names())

    def test_suites_rebind_device(self):
        suite = get_suite("rns_conversion")
        rebound = suite.requests("h100")
        assert all(request.device == "h100" for request in rebound)
        assert all(request.device != "h100" for request in suite.specs)

    def test_fault_fraction_bounds(self):
        fault = ReplayFault(action=lambda: None, at_fraction=1.5)
        with pytest.raises(LoadGenError, match="at_fraction"):
            fault.trigger_index(10)
        assert ReplayFault(action=lambda: None, at_fraction=0.5).trigger_index(10) == 5
        assert ReplayFault(action=lambda: None, at_fraction=1.0).trigger_index(10) == 9
