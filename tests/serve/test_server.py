"""KernelServer behaviour: dedup, warm serving, batching, lifecycle.

The acceptance property of the serving subsystem lives here: a warm server
answers a tuned kernel request with **zero** compilations and **zero**
tuning-database accesses, while N concurrent identical requests share
exactly one compilation.
"""

import threading

import pytest

from repro.errors import ServingError, TuningError
from repro.serve import KernelServer, ServeRequest

BITS = 128
SIZE = 16


def _request(**kwargs):
    defaults = dict(kind="ntt", bits=BITS, size=SIZE)
    defaults.update(kwargs)
    return ServeRequest(**defaults)


@pytest.fixture
def server():
    with KernelServer(devices=("rtx4090",)) as instance:
        yield instance


class TestColdAndWarmServing:
    def test_cold_serve_tunes_and_compiles(self, server):
        result = server.serve(_request())
        assert not result.warm
        assert result.tuning is not None
        assert not result.from_database  # first tune of the family searches
        assert result.artifact is not None
        assert result.config.bits == BITS
        snapshot = server.metrics_snapshot()
        assert snapshot.cold_serves == 1
        assert snapshot.resident_kernels == 1

    def test_warm_serve_is_free(self, server):
        """Acceptance: zero compilations, zero tuning-db searches per request."""
        server.serve(_request())
        compilations_before = server.session.stats().compilations
        cache_before = server.session.cache_info()
        db_before = server.db.stats()

        result = server.serve(_request())

        assert result.warm
        assert server.session.stats().compilations == compilations_before
        cache_after = server.session.cache_info()
        # Not even a cache lookup: the resident table answers before the
        # session or the database are consulted.
        assert cache_after.hits == cache_before.hits
        assert cache_after.misses == cache_before.misses
        db_after = server.db.stats()
        assert db_after.hits == db_before.hits
        assert db_after.misses == db_before.misses
        assert server.metrics_snapshot().warm_serves == 1

    def test_warm_result_reuses_artifact_and_tuning(self, server):
        cold = server.serve(_request())
        warm = server.serve(_request())
        assert warm.artifact is cold.artifact
        assert warm.config == cold.config
        assert warm.tuning == cold.tuning

    def test_distinct_requests_are_distinct_entries(self, server):
        server.serve(_request())
        server.serve(_request(bits=256))
        server.serve(_request(target="cuda"))
        assert server.resident_count == 3

    def test_pinned_request_skips_tuning(self, server):
        result = server.serve(
            _request(tune=False, multiplication="karatsuba", word_bits=32)
        )
        assert result.tuning is None
        assert result.config.multiplication == "karatsuba"
        assert result.config.word_bits == 32
        assert server.metrics_snapshot().batched_tunes == 0

    def test_cuda_target_serves_source(self, server):
        result = server.serve(_request(target="cuda"))
        assert "__device__" in str(result.artifact)


class TestDeduplication:
    def test_n_threads_one_compilation(self):
        """Acceptance: concurrent identical requests share one compilation."""
        n = 12
        with KernelServer(devices=("rtx4090",), workers=n) as server:
            barrier = threading.Barrier(n)
            results = [None] * n

            def worker(index):
                barrier.wait()
                results[index] = server.serve(_request())

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert all(result is not None for result in results)
            artifacts = {id(result.artifact) for result in results}
            assert len(artifacts) == 1

            snapshot = server.metrics_snapshot()
            assert snapshot.requests == n
            # Exactly one request went through the full path; the rest either
            # attached to it in flight or (late arrivals) were answered warm.
            assert snapshot.cold_serves == 1
            assert snapshot.dedup_hits + snapshot.warm_serves == n - 1
            assert snapshot.errors == 0
            # Exactly one tuning search ran for the family.
            assert snapshot.batched_tunes == 1


class TestTuneBatching:
    def test_concurrent_cold_requests_share_a_batch(self):
        with KernelServer(
            devices=("rtx4090",), workers=4, tune_batch_window_s=0.5
        ) as server:
            futures = [
                server.submit(_request(bits=bits)) for bits in (64, 128, 192)
            ]
            for future in futures:
                future.result()
            snapshot = server.metrics_snapshot()
            assert snapshot.batched_tunes == 3
            # The batch window groups the three families into one micro-batch
            # (one database save), not three.
            assert snapshot.tune_batches == 1


class TestLifecycleAndErrors:
    def test_invalid_request_raises_before_dispatch(self, server):
        with pytest.raises(TuningError):
            server.serve(_request(size=3))  # not a power of two
        assert server.metrics_snapshot().cold_serves == 0

    def test_closed_server_rejects_requests(self):
        server = KernelServer(devices=("rtx4090",))
        server.close()
        with pytest.raises(ServingError):
            server.serve(_request())

    def test_close_is_idempotent(self):
        server = KernelServer(devices=("rtx4090",))
        server.close()
        server.close()

    def test_server_requires_devices_and_workers(self):
        with pytest.raises(ServingError):
            KernelServer(devices=())
        with pytest.raises(ServingError):
            KernelServer(workers=0)

    def test_resident_table_is_bounded(self):
        with KernelServer(devices=("rtx4090",), resident_capacity=2) as server:
            for bits in (64, 128, 192):
                server.serve(_request(bits=bits, tune=False))
            # LRU bound: the oldest family fell out; the newest two are warm.
            assert server.resident_count == 2
            assert server.serve(_request(bits=192, tune=False)).warm
            assert not server.serve(_request(bits=64, tune=False)).warm

    def test_failed_request_is_not_resident(self, server):
        # A request that validates but cannot compile: pinned word width
        # wider than the operand fails inside the worker.
        with pytest.raises(Exception):
            server.serve(_request(bits=64, tune=False, word_bits=128))
        assert server.resident_count == 0
        assert server.metrics_snapshot().errors == 1
        # The key is no longer in flight: a valid retry path exists.
        assert server.queue_depth == 0
