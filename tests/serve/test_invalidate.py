"""Live invalidation: stale records are dropped, evicted, and re-tuned."""

import dataclasses

from repro.serve import KernelServer, ServeRequest, find_stale, invalidate_stale
from repro.tune import TUNER_VERSION, TuningDatabase

BITS = 128
SIZE = 16

REQUEST = ServeRequest(kind="ntt", bits=BITS, size=SIZE)


def _stale_version_db(path):
    """A database whose only record was tuned under an older tuner version."""
    with KernelServer(db=TuningDatabase(path), devices=("rtx4090",)) as server:
        server.serve(REQUEST)
    db = TuningDatabase(path)
    [(key, record)] = db.records().items()
    db.remove(key)
    db.store(dataclasses.replace(record, tuner_version=0))
    return TuningDatabase(path)


class TestFindStale:
    def test_fresh_records_are_live(self, tmp_path):
        path = tmp_path / "db.json"
        with KernelServer(db=TuningDatabase(path), devices=("rtx4090",)) as server:
            server.serve(REQUEST)
            assert find_stale(server.db) == ()

    def test_version_and_fingerprint_staleness_detected(self, tmp_path):
        path = tmp_path / "db.json"
        db = _stale_version_db(path)
        [record] = db.records().values()
        db.store(dataclasses.replace(record, tuner_version=TUNER_VERSION, fingerprint="0" * 16))
        stale = find_stale(db)
        assert {entry.reason for entry in stale} == {"version", "fingerprint"}


class TestInvalidateStale:
    def test_tuner_version_bump_evicts_and_retunes(self, tmp_path):
        """Acceptance: a version bump drops the record and re-tunes the family."""
        db = _stale_version_db(tmp_path / "db.json")
        with KernelServer(db=db, devices=("rtx4090",)) as server:
            searches_before = server.metrics_snapshot().batched_tunes
            report = invalidate_stale(server, refresh=True)

            assert report.stale_version == 1
            assert report.dropped_records == 1
            assert report.refreshed == (REQUEST.workload().key,)
            # The stale record is gone; the re-tune wrote a current-version one.
            keys = set(server.db.records())
            assert not any(key.endswith("::v0") for key in keys)
            assert any(key.endswith(f"::v{TUNER_VERSION}") for key in keys)
            # The refresh genuinely searched (no warm record to lean on).
            assert server.metrics_snapshot().batched_tunes == searches_before + 1
            # Traffic after the refresh is answered warm.
            assert server.serve(REQUEST).warm

    def test_stale_records_evict_resident_results_and_artifacts(self, tmp_path):
        path = tmp_path / "db.json"
        with KernelServer(db=TuningDatabase(path), devices=("rtx4090",)) as server:
            result = server.serve(REQUEST)
            assert server.resident_count == 1
            # Simulate the family having gone stale: plant a bogus-fingerprint
            # record for the same (workload, device).
            [(key, record)] = server.db.records().items()
            server.db.store(dataclasses.replace(record, fingerprint="0" * 16))

            invalidations_before = server.session.cache_info().invalidations
            report = invalidate_stale(server)

            assert report.stale_fingerprint == 1
            assert report.evicted_resident == 1
            assert report.evicted_artifacts == 1
            assert server.resident_count == 0
            assert server.session.cache_info().invalidations == invalidations_before + 1
            # The next serve re-compiles (cold) rather than using stale
            # state; the family's live record still answers the tuning.
            fresh = server.serve(REQUEST)
            assert not fresh.warm
            assert fresh.from_database
            assert fresh.cache_key == result.cache_key
            assert fresh.artifact is not result.artifact

    def test_dropped_records_stay_dropped_on_disk(self, tmp_path):
        path = tmp_path / "db.json"
        db = _stale_version_db(path)
        with KernelServer(db=db, devices=("rtx4090",)) as server:
            invalidate_stale(server)
        # Merge-on-save must not resurrect the tombstoned record from disk.
        db.save()
        assert not any(
            key.endswith("::v0") for key in TuningDatabase(path).records()
        )

    def test_refresh_skips_other_devices(self, tmp_path):
        path = tmp_path / "db.json"
        with KernelServer(db=TuningDatabase(path), devices=("h100",)) as server:
            server.serve(dataclasses.replace(REQUEST, device="h100"))
        db = TuningDatabase(path)
        [(key, record)] = db.records().items()
        db.remove(key)
        db.store(dataclasses.replace(record, tuner_version=0))

        with KernelServer(db=db, devices=("rtx4090",)) as server:
            report = invalidate_stale(server, refresh=True)
            assert report.dropped_records == 1
            assert report.refreshed == ()
