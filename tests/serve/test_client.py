"""Client API: served frontends compute the same values, share one cache."""

import pytest

from repro.kernels.config import KernelConfig
from repro.ntt.generated import GeneratedNTT
from repro.poly.blas import MomaBlasEngine, PythonBlasEngine
from repro.serve import KernelServer, ServedBlasEngine, ServedNTT

BITS = 128
SIZE = 16


@pytest.fixture(scope="module")
def server():
    with KernelServer(devices=("rtx4090",)) as instance:
        yield instance


class TestServedNTT:
    def test_round_trip_and_convolution(self, server):
        ntt = ServedNTT(server, size=SIZE, bits=BITS)
        values = [(i * 37) % ntt.modulus for i in range(SIZE)]
        assert ntt.inverse(ntt.forward(values)) == values

    def test_matches_locally_compiled_frontend(self, server):
        served = ServedNTT(server, size=SIZE, bits=BITS, tune=False)
        local = GeneratedNTT(SIZE, KernelConfig(bits=BITS), plan=served.plan)
        values = list(range(SIZE))
        assert served.forward(values) == local.forward(values)

    def test_instances_share_the_server_cache(self, server):
        ServedNTT(server, size=SIZE, bits=BITS)
        compilations_before = server.session.stats().compilations
        ServedNTT(server, size=SIZE, bits=BITS)
        assert server.session.stats().compilations == compilations_before

    def test_generated_ntt_serve_hook(self, server):
        ntt = GeneratedNTT(SIZE, KernelConfig(bits=BITS), serve=server, autotune=True)
        values = list(range(SIZE))
        assert ntt.inverse(ntt.forward(values)) == values
        # The tuned configuration preserves the semantic widths.
        assert ntt.config.bits == BITS
        assert ntt.config.effective_modulus_bits == BITS - 4


class TestServedBlasEngine:
    def test_matches_python_engine(self, server):
        served = ServedBlasEngine(server, bits=BITS)
        python = PythonBlasEngine()
        q = (1 << (BITS - 4)) - 159  # any (BITS-4)-bit odd modulus works
        x = [i % q for i in (3, 1 << 100, q - 1, 12345)]
        y = [i % q for i in (9, 1 << 90, q - 2, 54321)]
        assert served.vadd(x, y, q) == python.vadd(x, y, q)
        assert served.vsub(x, y, q) == python.vsub(x, y, q)
        assert served.vmul(x, y, q) == python.vmul(x, y, q)
        assert served.axpy(7, x, y, q) == python.axpy(7, x, y, q)

    def test_moma_engine_serve_hook_pins_config(self, server):
        config = KernelConfig(bits=BITS, multiplication="karatsuba")
        engine = MomaBlasEngine(config, serve=server)  # autotune=False: pinned
        assert all(
            generated.multiplication == "karatsuba"
            for generated in engine.operation_configs.values()
        )

    def test_served_engine_adds_no_compilations_second_time(self, server):
        ServedBlasEngine(server, bits=BITS)
        compilations_before = server.session.stats().compilations
        ServedBlasEngine(server, bits=BITS)
        assert server.session.stats().compilations == compilations_before
