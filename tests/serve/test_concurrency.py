"""Concurrency guarantees of the shared compiler/tuning infrastructure.

These are the serving subsystem's foundations: the content-addressed cache
and session counters survive thread hammering, the process-wide default
session initializes exactly once under a race, and concurrent writers to one
tuning-database file merge instead of clobbering each other.
"""

import threading

import repro.core.driver.session as session_module
from repro.core.driver import CompilerSession, get_default_session
from repro.core.driver.cache import ContentAddressedCache
from repro.kernels.config import KernelConfig
from repro.kernels.ntt_gen import build_butterfly_kernel
from repro.tune import Autotuner, TuningDatabase, Workload


def _run_threads(count, target):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestCacheThreadSafety:
    def test_hammered_cache_keeps_consistent_counters(self):
        cache = ContentAddressedCache(maxsize=8)
        lookups_per_thread = 500
        errors = []

        def worker(seed):
            try:
                for i in range(lookups_per_thread):
                    key = f"k{(seed * 7 + i) % 32}"
                    if cache.get(key) is None:
                        cache.put(key, seed)
            except Exception as error:  # pragma: no cover - the failure mode
                errors.append(error)

        _run_threads(8, worker)
        assert not errors
        stats = cache.stats()
        # Every get() counted exactly one hit or one miss, no updates lost.
        assert stats.hits + stats.misses == 8 * lookups_per_thread
        assert stats.currsize <= stats.maxsize
        assert len(cache) == stats.currsize

    def test_discard_counts_invalidations(self):
        cache = ContentAddressedCache(maxsize=4)
        cache.put("a", 1)
        assert cache.discard("a") is True
        assert cache.discard("a") is False
        stats = cache.stats()
        assert stats.invalidations == 1
        assert stats.evictions == 0

    def test_concurrent_session_compiles_keep_counters_consistent(self):
        session = CompilerSession()
        config = KernelConfig(bits=128)
        kernel = build_butterfly_kernel(config)
        errors = []

        def worker(_):
            try:
                for _ in range(5):
                    session.compile(
                        kernel, target="python_exec", options=config.rewrite_options()
                    )
            except Exception as error:  # pragma: no cover - the failure mode
                errors.append(error)

        _run_threads(8, worker)
        assert not errors
        info = session.cache_info()
        assert info.hits + info.misses == session.stats().cache_hits + len(
            session.stats().records
        )


class TestDefaultSessionRace:
    def test_racing_initialization_yields_one_session(self):
        barrier = threading.Barrier(16)
        seen = []
        lock = threading.Lock()
        # Reset the module global so every thread races first-initialization.
        session_module._DEFAULT_SESSION = None

        def worker(_):
            barrier.wait()
            session = get_default_session()
            with lock:
                seen.append(session)

        _run_threads(16, worker)
        assert len({id(session) for session in seen}) == 1


class TestDatabaseMergeOnSave:
    def _tune(self, db, bits, device="rtx4090"):
        workload = Workload(kind="ntt", bits=bits, size=16)
        return Autotuner(session=CompilerSession(), db=db).tune(workload, device)

    def test_parallel_writers_keep_each_others_records(self, tmp_path):
        path = tmp_path / "db.json"
        # Two database instances over one file: each tunes a different
        # workload, saving in sequence.  Without merge-on-save the second
        # save would drop the first writer's record (last-writer-wins).
        first = TuningDatabase(path)
        second = TuningDatabase(path)
        self._tune(first, 128)
        self._tune(second, 256)

        merged = TuningDatabase(path)
        assert len(merged) == 2
        keys = set(merged.records())
        assert any("::rtx4090::" in key for key in keys)
        workloads = {record.workload_key for record in merged.records().values()}
        assert workloads == {"ntt/cooley_tukey/n16/128b", "ntt/cooley_tukey/n16/256b"}

    def test_removed_record_is_not_resurrected_by_merge(self, tmp_path):
        path = tmp_path / "db.json"
        db = TuningDatabase(path)
        result = self._tune(db, 128)
        [key] = db.records().keys()
        assert result.candidate is not None

        # A stale copy of the record still sits on disk in another writer's
        # snapshot; remove + save must tombstone it, not merge it back.
        assert db.remove(key) is True
        assert len(TuningDatabase(path)) == 0
        db.save()
        assert len(TuningDatabase(path)) == 0

    def test_removal_survives_another_processes_save(self, tmp_path):
        path = tmp_path / "db.json"
        shared = TuningDatabase(path)
        self._tune(shared, 128)
        [key] = shared.records().keys()

        # "Process B" loads the file (and the record) before the removal...
        other = TuningDatabase(path)
        assert key in other
        # ..."process A" removes the record and saves a tombstone...
        shared.remove(key)
        # ...then B saves: merge-on-save must honor the on-disk tombstone,
        # not write B's stale in-memory copy back.
        other.save()
        assert key not in TuningDatabase(path)

    def test_concurrent_instances_store_threads(self, tmp_path):
        path = tmp_path / "db.json"
        errors = []

        def worker(index):
            try:
                self._tune(TuningDatabase(path), 128 + 64 * index)
            except Exception as error:  # pragma: no cover - the failure mode
                errors.append(error)

        _run_threads(4, worker)
        assert not errors
        assert len(TuningDatabase(path)) == 4
