"""Protocol v2: binary payload frames, negotiation, and frame fuzzing.

The acceptance properties of the fast wire live here: every message
round-trips through the v2 binary container (artifact bodies as raw
length-prefixed frames — no base64, no JSON string-escaping), a v2 kernel
reply is strictly smaller than its v1 JSON+base64 form, decoders accept
*both* encodings without being told which is coming (the frame magic
disambiguates), version negotiation is min(local, peer) with v1-era peers
defaulting to 1, and every malformed v2 container — truncated frames,
envelope/frame length disagreements, garbage, trailing bytes — fails with
:class:`ProtocolError`, never a hang or a bad allocation.
"""

import dataclasses
import io
import json
import socket

import pytest

from repro.core.codegen.python_exec import CompiledKernel
from repro.errors import ProtocolError
from repro.serve import KernelServer, ServeRequest
from repro.serve import protocol

BITS = 128
SIZE = 16

V2 = protocol.PROTOCOL_VERSION_2


@pytest.fixture(scope="module")
def served():
    """One cold-served result (executable artifact + tuning provenance)."""
    with KernelServer(devices=("rtx4090",)) as server:
        yield server.serve(ServeRequest(kind="ntt", bits=BITS, size=SIZE))


def round_trip_v2(message, allow_pickled=False):
    return protocol.decode_message(
        protocol.encode_message(message, version=V2), allow_pickled=allow_pickled
    )


class TestV2RoundTrips:
    def test_calls_round_trip(self):
        for message in (
            protocol.ServeCall(
                request_id=7,
                request=ServeRequest(kind="blas", bits=256, operation="vmul"),
            ),
            protocol.StatsCall(request_id=8),
            protocol.PingCall(request_id=9),
            protocol.ShutdownCall(request_id=10),
        ):
            assert round_trip_v2(message) == message

    def test_v2_blob_starts_with_magic(self):
        data = protocol.encode_message(protocol.PingCall(request_id=1), version=V2)
        assert data[: len(protocol.FRAME_MAGIC)] == protocol.FRAME_MAGIC

    def test_magic_is_invalid_utf8(self):
        # The disambiguation guarantee: a v2 blob can never parse as a v1
        # JSON envelope, so a confused v1-only decoder fails cleanly
        # instead of mis-reading it.
        with pytest.raises(UnicodeDecodeError):
            protocol.FRAME_MAGIC.decode("utf-8")

    def test_pickled_kernel_round_trips_through_a_binary_frame(self, served):
        message = protocol.ServeReply(request_id=9, result=served)
        decoded = round_trip_v2(message, allow_pickled=True)
        result = decoded.result
        assert result.request == served.request
        assert isinstance(result.artifact, CompiledKernel)
        limbs = tuple(range(len(served.artifact.kernel.params)))
        assert result.artifact.call_limbs(*limbs) == served.artifact.call_limbs(*limbs)

    def test_source_artifact_crosses_as_raw_utf8(self, served):
        source = "__global__ void k() {\n  /* newlines stay raw */\n}\n"
        source_result = dataclasses.replace(
            served,
            request=dataclasses.replace(served.request, target="cuda"),
            artifact=source,
        )
        data = protocol.encode_message(
            protocol.ServeReply(request_id=1, result=source_result), version=V2
        )
        # Zero-copy into the payload frame: the raw bytes appear verbatim,
        # un-escaped (the v1 JSON form escapes every newline as \\n).
        assert source.encode("utf-8") in data
        decoded = protocol.decode_message(data)
        assert decoded.result.artifact == source

    def test_kernel_reply_is_smaller_than_v1(self, served):
        # The size half of the perf claim: no base64 (+33%) on the pickle.
        message = protocol.ServeReply(request_id=9, result=served)
        v1 = protocol.encode_message(message)
        v2 = protocol.encode_message(message, version=V2)
        assert len(v2) < len(v1)

    def test_pickled_frame_is_trust_gated(self, served):
        data = protocol.encode_message(
            protocol.ServeReply(request_id=9, result=served), version=V2
        )
        with pytest.raises(ProtocolError, match="unpickle"):
            protocol.decode_message(data, allow_pickled=False)

    def test_unknown_encode_version_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            protocol.encode_message(protocol.PingCall(request_id=1), version=3)

    def test_decoder_accepts_both_encodings_unannounced(self):
        message = protocol.PingCall(request_id=5)
        for data in (
            protocol.encode_message(message),
            protocol.encode_message(message, version=V2),
        ):
            assert protocol.decode_message(data) == message


class TestNegotiation:
    def test_min_wins(self):
        assert protocol.negotiate_version(2, 1) == 1
        assert protocol.negotiate_version(1, 2) == 1
        assert protocol.negotiate_version(2, 2) == 2
        # A future peer advertising v3 still lands on our maximum.
        assert protocol.negotiate_version(2, 3) == 2

    def test_impossible_peer_versions_rejected(self):
        for bad in (0, -1, True, "2", None, 1.5):
            with pytest.raises(ProtocolError, match="impossible"):
                protocol.negotiate_version(2, bad)

    def test_hello_carries_max_protocol(self):
        hello = protocol.HelloCall(
            request_id=1,
            protocol_version=protocol.PROTOCOL_VERSION,
            shard_id=0,
            trust=protocol.TRUST_SOURCE,
            max_protocol=2,
        )
        assert protocol.decode_message(protocol.encode_message(hello)).max_protocol == 2

    def test_v1_era_hello_defaults_to_max_protocol_1(self):
        # A peer built before negotiation existed sends no max_protocol
        # field at all; the decoder must default it to 1, which is what
        # makes min(local, peer) collapse mixed clusters onto v1.
        hello = protocol.HelloCall(
            request_id=1,
            protocol_version=protocol.PROTOCOL_VERSION,
            shard_id=0,
            trust=protocol.TRUST_SOURCE,
        )
        envelope = json.loads(protocol.encode_message(hello).decode("utf-8"))
        del envelope["payload"]["max_protocol"]
        decoded = protocol.decode_message(json.dumps(envelope).encode("utf-8"))
        assert decoded.max_protocol == 1

    def test_nonpositive_max_protocol_in_hello_rejected(self):
        hello = protocol.HelloCall(
            request_id=1,
            protocol_version=protocol.PROTOCOL_VERSION,
            shard_id=0,
            trust=protocol.TRUST_SOURCE,
        )
        envelope = json.loads(protocol.encode_message(hello).decode("utf-8"))
        envelope["payload"]["max_protocol"] = 0
        with pytest.raises(ProtocolError):
            protocol.decode_message(json.dumps(envelope).encode("utf-8"))


class TestPreEncodedProbes:
    def test_ping_matches_encode_message(self):
        for request_id in (1, 42, 987654321987654320, 10**19):
            assert protocol.encode_ping(request_id) == protocol.encode_message(
                protocol.PingCall(request_id=request_id)
            )

    def test_pong_matches_encode_message(self):
        for request_id, shard_id, pid in ((1, 0, 100), (77, 3, 43210)):
            assert protocol.encode_pong(
                request_id, shard_id, pid
            ) == protocol.encode_message(
                protocol.PongReply(request_id=request_id, shard_id=shard_id, pid=pid)
            )

    def test_non_integer_request_ids_rejected(self):
        for bad in (True, "1", None, 1.5):
            with pytest.raises(ProtocolError):
                protocol.encode_ping(bad)
            with pytest.raises(ProtocolError):
                protocol.encode_pong(bad, 0, 1)


def v2_blob(message=None):
    """A valid v2 wire blob carrying at least one payload frame."""
    if message is None:
        message = protocol.ServeReply(
            request_id=3,
            result=_SOURCE_RESULT,
        )
    return protocol.encode_message(message, version=V2)


def tamper(blob: bytes, **envelope_overrides) -> bytes:
    """Rebuild a v2 blob with its JSON envelope fields overridden.

    The frame bytes after the envelope are preserved verbatim, so a
    mismatch between what the envelope *declares* and what the frames
    *are* can be manufactured precisely.
    """
    offset = len(protocol.FRAME_MAGIC)
    head_length = int.from_bytes(blob[offset : offset + 4], "big")
    head = json.loads(blob[offset + 4 : offset + 4 + head_length].decode("utf-8"))
    tail = blob[offset + 4 + head_length :]
    head.update(envelope_overrides)
    new_head = json.dumps(head, sort_keys=True).encode("utf-8")
    return (
        protocol.FRAME_MAGIC
        + len(new_head).to_bytes(4, "big")
        + new_head
        + tail
    )


_SOURCE_RESULT = None  # populated by the fixture below


@pytest.fixture(autouse=True, scope="module")
def _source_result(served):
    global _SOURCE_RESULT
    _SOURCE_RESULT = dataclasses.replace(
        served,
        request=dataclasses.replace(served.request, target="cuda"),
        artifact="def kernel(x):\n    return x\n",
    )
    yield
    _SOURCE_RESULT = None


class TestV2Fuzz:
    """Malformed v2 containers over a real socketpair: always ProtocolError.

    The bytes travel through the real stream framing (4-byte prefix +
    body over an unbuffered socket file) exactly as they would between a
    supervisor and a TCP shard, so short reads and mid-frame EOF are
    exercised too, not just the in-memory decoder.
    """

    @staticmethod
    def feed(payload: bytes, allow_pickled: bool = False):
        """Deliver one stream frame around ``payload``; decode its message."""
        writer, reader_sock = socket.socketpair()
        with writer, reader_sock:
            reader_sock.settimeout(30.0)  # a hang fails loudly, not forever
            reader = reader_sock.makefile("rb", buffering=0)
            writer.sendall(len(payload).to_bytes(4, "big") + payload)
            writer.shutdown(socket.SHUT_WR)
            return protocol.read_message(reader, allow_pickled=allow_pickled)

    def test_valid_blob_survives_the_stream(self):
        decoded = self.feed(v2_blob())
        assert decoded.result.artifact == _SOURCE_RESULT.artifact

    def test_every_truncation_is_rejected(self):
        blob = v2_blob()
        for cut in range(len(protocol.FRAME_MAGIC), len(blob)):
            with pytest.raises(ProtocolError):
                self.feed(blob[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ProtocolError, match="trailing"):
            self.feed(v2_blob() + b"xx")

    def test_envelope_frame_length_mismatch_rejected(self):
        blob = v2_blob()
        declared = tamper(blob)  # identity rebuild, sanity
        assert protocol.decode_message(declared).request_id == 3
        head = json.loads(
            blob[
                len(protocol.FRAME_MAGIC) + 4 : len(protocol.FRAME_MAGIC)
                + 4
                + int.from_bytes(
                    blob[len(protocol.FRAME_MAGIC) : len(protocol.FRAME_MAGIC) + 4],
                    "big",
                )
            ].decode("utf-8")
        )
        lengths = head["frames"]
        assert lengths, "the fixture blob must carry a payload frame"
        for delta in (-1, 1, 1000):
            wrong = [lengths[0] + delta] + lengths[1:]
            if wrong[0] < 0:
                continue
            with pytest.raises(ProtocolError, match="mismatch|truncated|trailing"):
                self.feed(tamper(blob, frames=wrong))

    def test_garbage_after_magic_rejected(self):
        for garbage in (b"", b"\x00", b"\xff" * 64, b'{"not":"frames"}'):
            with pytest.raises(ProtocolError):
                self.feed(protocol.FRAME_MAGIC + garbage)

    def test_huge_declared_frame_never_allocates(self):
        blob = v2_blob()
        with pytest.raises(ProtocolError, match="malformed|truncated"):
            self.feed(tamper(blob, frames=[protocol.MAX_FRAME_BYTES + 1]))

    def test_malformed_frame_tables_rejected(self):
        blob = v2_blob()
        for bad in ({"a": 1}, [True], [-1], ["4"], [None]):
            with pytest.raises(ProtocolError, match="malformed"):
                self.feed(tamper(blob, frames=bad))

    def test_wrong_envelope_version_inside_container_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            self.feed(tamper(v2_blob(), **{"moma-serve": 1}))

    def test_bad_frame_reference_rejected(self):
        # The payload references frame 0; an envelope declaring no frames
        # (and shipping none) leaves the reference dangling.
        blob = v2_blob()
        offset = len(protocol.FRAME_MAGIC)
        head_length = int.from_bytes(blob[offset : offset + 4], "big")
        head = json.loads(blob[offset + 4 : offset + 4 + head_length].decode("utf-8"))
        head["frames"] = []
        new_head = json.dumps(head, sort_keys=True).encode("utf-8")
        naked = protocol.FRAME_MAGIC + len(new_head).to_bytes(4, "big") + new_head
        with pytest.raises(ProtocolError):
            self.feed(naked)

    def test_undecodable_source_frame_rejected(self):
        # A source-text frame whose bytes are not UTF-8 must fail decode,
        # not surface mojibake as kernel source.
        blob = v2_blob()
        body = _SOURCE_RESULT.artifact.encode("utf-8")
        swapped = blob.replace(
            len(body).to_bytes(4, "big") + body,
            len(body).to_bytes(4, "big") + b"\xff" * len(body),
        )
        assert swapped != blob
        with pytest.raises(ProtocolError, match="UTF-8|utf-8|undecodable"):
            self.feed(swapped)


class TestStreamConnectionFastPath:
    def test_send_many_is_one_flush_of_many_frames(self):
        left, right = socket.socketpair()
        sender = protocol.StreamConnection(left)
        receiver = protocol.StreamConnection(right)
        try:
            payloads = [b"alpha", b"bravo" * 100, b"c"]
            sender.send_many(payloads)
            for expected in payloads:
                assert receiver.recv_bytes() == expected
        finally:
            sender.close()
            receiver.close()

    def test_send_many_of_nothing_is_a_no_op(self):
        left, right = socket.socketpair()
        sender = protocol.StreamConnection(left)
        try:
            sender.send_many([])
        finally:
            sender.close()
            right.close()

    def test_tcp_nodelay_is_set_on_tcp_sockets(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client = socket.create_connection(listener.getsockname()[:2], timeout=5)
        server_side, _ = listener.accept()
        try:
            for sock in (client, server_side):
                connection = protocol.StreamConnection(sock)
                assert sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0
        finally:
            client.close()
            server_side.close()
            listener.close()

    def test_unix_sockets_survive_the_nodelay_attempt(self):
        left, right = socket.socketpair()  # AF_UNIX: no Nagle to disable
        connection = protocol.StreamConnection(left)
        try:
            connection.send_bytes(b"ok")
        finally:
            connection.close()
            right.close()
