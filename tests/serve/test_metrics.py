"""Latency histogram percentiles: edge cases and a sampling property.

`percentile_from_histogram` is the supervisor's only view of cross-shard
latency (raw samples never cross the wire), so its edge behaviour matters:
an empty histogram, q=0, q=1, and out-of-domain q (someone passing percent,
e.g. 95 or 100) must all be well-defined — no division by zero, no indexing
past the overflow bucket.  The sampling property pins the approximation
contract against exact quantiles over the raw samples: the histogram answer
is the upper bound of the true quantile's bucket, so it brackets the exact
value within one log-2 bucket.
"""

import math
import random
import statistics

import pytest

from repro.serve.metrics import (
    HISTOGRAM_BUCKET_BOUNDS_MS,
    latency_histogram,
    percentile_from_histogram,
)


def bucket_upper_bound_ms(value_ms: float) -> float:
    """The fixed-histogram bucket bound a latency (ms) falls into."""
    for bound in HISTOGRAM_BUCKET_BOUNDS_MS:
        if value_ms <= bound:
            return bound
    return HISTOGRAM_BUCKET_BOUNDS_MS[-1]  # overflow reports the max bound


class TestEdgeCases:
    def test_empty_histogram_is_zero(self):
        assert percentile_from_histogram((), 0.5) == 0.0

    def test_all_zero_counts_is_zero(self):
        assert percentile_from_histogram((0,) * 26, 0.95) == 0.0

    def test_q_zero_reports_first_occupied_bucket(self):
        counts = [0] * (len(HISTOGRAM_BUCKET_BOUNDS_MS) + 1)
        counts[3] = 5
        counts[10] = 5
        assert (
            percentile_from_histogram(tuple(counts), 0.0)
            == HISTOGRAM_BUCKET_BOUNDS_MS[3]
        )

    def test_q_one_reports_last_occupied_bucket(self):
        counts = [0] * (len(HISTOGRAM_BUCKET_BOUNDS_MS) + 1)
        counts[3] = 5
        counts[10] = 5
        assert (
            percentile_from_histogram(tuple(counts), 1.0)
            == HISTOGRAM_BUCKET_BOUNDS_MS[10]
        )

    def test_overflow_bucket_reports_largest_finite_bound(self):
        counts = [0] * (len(HISTOGRAM_BUCKET_BOUNDS_MS) + 1)
        counts[-1] = 7  # every sample beyond the last bound
        assert (
            percentile_from_histogram(tuple(counts), 1.0)
            == HISTOGRAM_BUCKET_BOUNDS_MS[-1]
        )

    @pytest.mark.parametrize("q", [-0.1, 1.0001, 50, 95, 100])
    def test_out_of_domain_q_rejected(self, q):
        # Percent-style arguments must fail loudly, not report the max bucket.
        with pytest.raises(ValueError, match="fraction"):
            percentile_from_histogram((1, 2, 3), q)

    def test_single_sample_every_quantile(self):
        counts = latency_histogram((0.004,))  # 4 ms
        for q in (0.0, 0.5, 0.95, 1.0):
            assert percentile_from_histogram(counts, q) == bucket_upper_bound_ms(4.0)


class TestSamplingProperty:
    """Histogram percentiles track exact quantiles of the raw samples."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("q", [0.25, 0.50, 0.75, 0.95])
    def test_matches_exact_quantile_within_bucket_resolution(self, seed, q):
        rng = random.Random(seed)
        # Log-uniform latencies from ~2 µs to ~8 s: spans most buckets.
        samples = tuple(10 ** rng.uniform(-5.7, 0.9) for _ in range(500))
        counts = latency_histogram(samples)

        approx_ms = percentile_from_histogram(counts, q)
        # Nearest-rank exact quantile over the same samples (in ms).
        exact_ms = sorted(samples)[max(1, math.ceil(q * len(samples))) - 1] * 1e3

        # The histogram reports the exact quantile's bucket upper bound:
        # at least the true value, within one log-2 bucket above it.
        assert approx_ms == bucket_upper_bound_ms(exact_ms)
        assert approx_ms >= exact_ms * (1.0 - 1e-9)
        assert approx_ms <= exact_ms * 2.0

    @pytest.mark.parametrize("seed", [11, 12])
    def test_brackets_statistics_quantiles(self, seed):
        # statistics.quantiles uses interpolation (not nearest rank), so
        # only the bucket-resolution bracket is required to hold.
        rng = random.Random(seed)
        samples = tuple(10 ** rng.uniform(-4.0, 0.0) for _ in range(1000))
        counts = latency_histogram(samples)
        cuts = statistics.quantiles(samples, n=100, method="inclusive")
        for q, exact_s in ((0.50, cuts[49]), (0.95, cuts[94])):
            approx_ms = percentile_from_histogram(counts, q)
            exact_ms = exact_s * 1e3
            # Within one log-2 bucket either side of the interpolated value.
            assert exact_ms / 2.0 <= approx_ms <= exact_ms * 2.0

    def test_merged_histograms_match_pooled_samples(self):
        # The supervisor's merge (element-wise sum) must equal bucketing
        # the pooled samples directly.
        rng = random.Random(7)
        shard_a = tuple(10 ** rng.uniform(-5.0, 0.5) for _ in range(200))
        shard_b = tuple(10 ** rng.uniform(-5.0, 0.5) for _ in range(300))
        merged = tuple(
            a + b
            for a, b in zip(latency_histogram(shard_a), latency_histogram(shard_b))
        )
        pooled = latency_histogram(shard_a + shard_b)
        assert merged == pooled
        for q in (0.5, 0.95):
            assert percentile_from_histogram(merged, q) == percentile_from_histogram(
                pooled, q
            )
