"""Latency histogram percentiles: edge cases and a sampling property.

`percentile_from_histogram` is the supervisor's only view of cross-shard
latency (raw samples never cross the wire), so its edge behaviour matters:
an empty histogram, q=0, q=1, and out-of-domain q (someone passing percent,
e.g. 95 or 100) must all be well-defined — no division by zero, no indexing
past the overflow bucket.  The sampling property pins the approximation
contract against exact quantiles over the raw samples: the histogram answer
is the upper bound of the true quantile's bucket, so it brackets the exact
value within one log-2 bucket.
"""

import dataclasses
import math
import random
import statistics
import threading

import pytest

from repro.serve.metrics import (
    HISTOGRAM_BUCKET_BOUNDS_MS,
    ServerMetrics,
    WireProfile,
    latency_histogram,
    percentile_from_histogram,
)


def bucket_upper_bound_ms(value_ms: float) -> float:
    """The fixed-histogram bucket bound a latency (ms) falls into."""
    for bound in HISTOGRAM_BUCKET_BOUNDS_MS:
        if value_ms <= bound:
            return bound
    return HISTOGRAM_BUCKET_BOUNDS_MS[-1]  # overflow reports the max bound


class TestEdgeCases:
    def test_empty_histogram_is_zero(self):
        assert percentile_from_histogram((), 0.5) == 0.0

    def test_all_zero_counts_is_zero(self):
        assert percentile_from_histogram((0,) * 26, 0.95) == 0.0

    def test_q_zero_reports_first_occupied_bucket(self):
        counts = [0] * (len(HISTOGRAM_BUCKET_BOUNDS_MS) + 1)
        counts[3] = 5
        counts[10] = 5
        assert (
            percentile_from_histogram(tuple(counts), 0.0)
            == HISTOGRAM_BUCKET_BOUNDS_MS[3]
        )

    def test_q_one_reports_last_occupied_bucket(self):
        counts = [0] * (len(HISTOGRAM_BUCKET_BOUNDS_MS) + 1)
        counts[3] = 5
        counts[10] = 5
        assert (
            percentile_from_histogram(tuple(counts), 1.0)
            == HISTOGRAM_BUCKET_BOUNDS_MS[10]
        )

    def test_overflow_bucket_reports_largest_finite_bound(self):
        counts = [0] * (len(HISTOGRAM_BUCKET_BOUNDS_MS) + 1)
        counts[-1] = 7  # every sample beyond the last bound
        assert (
            percentile_from_histogram(tuple(counts), 1.0)
            == HISTOGRAM_BUCKET_BOUNDS_MS[-1]
        )

    @pytest.mark.parametrize("q", [-0.1, 1.0001, 50, 95, 100])
    def test_out_of_domain_q_rejected(self, q):
        # Percent-style arguments must fail loudly, not report the max bucket.
        with pytest.raises(ValueError, match="fraction"):
            percentile_from_histogram((1, 2, 3), q)

    def test_single_sample_every_quantile(self):
        counts = latency_histogram((0.004,))  # 4 ms
        for q in (0.0, 0.5, 0.95, 1.0):
            assert percentile_from_histogram(counts, q) == bucket_upper_bound_ms(4.0)


class TestSamplingProperty:
    """Histogram percentiles track exact quantiles of the raw samples."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("q", [0.25, 0.50, 0.75, 0.95])
    def test_matches_exact_quantile_within_bucket_resolution(self, seed, q):
        rng = random.Random(seed)
        # Log-uniform latencies from ~2 µs to ~8 s: spans most buckets.
        samples = tuple(10 ** rng.uniform(-5.7, 0.9) for _ in range(500))
        counts = latency_histogram(samples)

        approx_ms = percentile_from_histogram(counts, q)
        # Nearest-rank exact quantile over the same samples (in ms).
        exact_ms = sorted(samples)[max(1, math.ceil(q * len(samples))) - 1] * 1e3

        # The histogram reports the exact quantile's bucket upper bound:
        # at least the true value, within one log-2 bucket above it.
        assert approx_ms == bucket_upper_bound_ms(exact_ms)
        assert approx_ms >= exact_ms * (1.0 - 1e-9)
        assert approx_ms <= exact_ms * 2.0

    @pytest.mark.parametrize("seed", [11, 12])
    def test_brackets_statistics_quantiles(self, seed):
        # statistics.quantiles uses interpolation (not nearest rank), so
        # only the bucket-resolution bracket is required to hold.
        rng = random.Random(seed)
        samples = tuple(10 ** rng.uniform(-4.0, 0.0) for _ in range(1000))
        counts = latency_histogram(samples)
        cuts = statistics.quantiles(samples, n=100, method="inclusive")
        for q, exact_s in ((0.50, cuts[49]), (0.95, cuts[94])):
            approx_ms = percentile_from_histogram(counts, q)
            exact_ms = exact_s * 1e3
            # Within one log-2 bucket either side of the interpolated value.
            assert exact_ms / 2.0 <= approx_ms <= exact_ms * 2.0

    def test_merged_histograms_match_pooled_samples(self):
        # The supervisor's merge (element-wise sum) must equal bucketing
        # the pooled samples directly.
        rng = random.Random(7)
        shard_a = tuple(10 ** rng.uniform(-5.0, 0.5) for _ in range(200))
        shard_b = tuple(10 ** rng.uniform(-5.0, 0.5) for _ in range(300))
        merged = tuple(
            a + b
            for a, b in zip(latency_histogram(shard_a), latency_histogram(shard_b))
        )
        pooled = latency_histogram(shard_a + shard_b)
        assert merged == pooled
        for q in (0.5, 0.95):
            assert percentile_from_histogram(merged, q) == percentile_from_histogram(
                pooled, q
            )


class TestWireSnapshotDelta:
    """Snapshots are monotonic totals; ``delta`` isolates a polling window.

    The regression this pins: a caller polling ``--stats`` repeatedly must
    not read the totals twice and report the first window's traffic again.
    ``delta(before)`` subtracts field-wise, so consecutive windows sum back
    to the totals and an idle window is exactly zero.
    """

    def test_delta_isolates_the_window_between_snapshots(self):
        profile = WireProfile()
        profile.record_send(100, 0.001, route_s=0.0005)
        profile.record_flush(0.0002)
        before = profile.snapshot()

        profile.record_send(40, 0.002, route_s=0.0001)
        profile.record_receive(300, 0.003)
        profile.record_flush(0.0004)
        window = profile.snapshot().delta(before)

        assert window.messages_sent == 1
        assert window.messages_received == 1
        assert window.flushes == 1
        assert window.bytes_sent == 40
        assert window.bytes_received == 300
        assert window.encode_s == pytest.approx(0.002)
        assert window.decode_s == pytest.approx(0.003)
        assert window.route_s == pytest.approx(0.0001)
        assert window.flush_s == pytest.approx(0.0004)

    def test_idle_window_is_zero_for_every_field(self):
        profile = WireProfile()
        profile.record_send(100, 0.001)
        profile.record_receive(50, 0.001)
        snap = profile.snapshot()
        for field, value in dataclasses.asdict(snap.delta(snap)).items():
            assert value == 0, f"idle delta field {field} = {value}"

    def test_repeated_polls_double_count_without_delta(self):
        # The failure mode delta exists for: raw totals are cumulative.
        profile = WireProfile()
        profile.record_send(10, 0.0)
        first = profile.snapshot()
        profile.record_send(10, 0.0)
        second = profile.snapshot()
        assert second.messages_sent == 2  # totals keep growing
        assert second.delta(first).messages_sent == 1  # the window does not

    def test_consecutive_windows_sum_to_the_totals(self):
        profile = WireProfile()
        snapshots = [profile.snapshot()]
        for size in (10, 20, 30):
            profile.record_send(size, 0.001)
            profile.record_flush(0.0001)
            snapshots.append(profile.snapshot())
        windows = [
            later.delta(earlier)
            for earlier, later in zip(snapshots, snapshots[1:])
        ]
        assert sum(w.bytes_sent for w in windows) == snapshots[-1].bytes_sent
        assert sum(w.flushes for w in windows) == snapshots[-1].flushes
        assert sum(w.flush_s for w in windows) == pytest.approx(
            snapshots[-1].flush_s
        )


class TestConcurrentRecording:
    """N threads hammer one accumulator; every event must be conserved.

    Counter updates in :class:`ServerMetrics` and :class:`WireProfile` are
    multi-field (count + latency sample, bytes + seconds), so a lost update
    or torn read under contention would show up as snapshots whose parts
    disagree with the known totals.
    """

    THREADS = 8
    EVENTS_PER_THREAD = 400

    def _hammer(self, worker) -> None:
        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_server_metrics_conserve_every_event(self):
        metrics = ServerMetrics()

        def worker(index: int) -> None:
            for event in range(self.EVENTS_PER_THREAD):
                metrics.record_request()
                outcome = (index + event) % 4
                if outcome == 0:
                    metrics.record_warm(0.001)
                elif outcome == 1:
                    metrics.record_cold(0.010)
                elif outcome == 2:
                    metrics.record_dedup()
                else:
                    metrics.record_error()
                if event % 50 == 0:
                    metrics.record_tune_batch(2)
                    metrics.snapshot()  # concurrent reads must not tear

        self._hammer(worker)
        total = self.THREADS * self.EVENTS_PER_THREAD
        snap = metrics.snapshot()
        assert snap.requests == total
        assert (
            snap.warm_serves + snap.cold_serves + snap.dedup_hits + snap.errors
            == total
        )
        assert snap.warm_serves == total // 4
        assert snap.tune_batches == self.THREADS * (self.EVENTS_PER_THREAD // 50)
        assert snap.batched_tunes == 2 * snap.tune_batches
        warm, cold = metrics.latency_samples()
        assert len(warm) == min(snap.warm_serves, 4096)
        assert len(cold) == min(snap.cold_serves, 4096)

    def test_wire_profile_conserves_bytes_and_time(self):
        profile = WireProfile()

        def worker(index: int) -> None:
            for event in range(self.EVENTS_PER_THREAD):
                profile.record_send(10, 0.001, route_s=0.0005)
                profile.record_receive(30, 0.002)
                if event % 4 == 0:
                    profile.record_flush(0.0001)
                if event % 100 == 0:
                    profile.snapshot()

        self._hammer(worker)
        total = self.THREADS * self.EVENTS_PER_THREAD
        snap = profile.snapshot()
        assert snap.messages_sent == total
        assert snap.messages_received == total
        assert snap.bytes_sent == 10 * total
        assert snap.bytes_received == 30 * total
        assert snap.flushes == self.THREADS * (self.EVENTS_PER_THREAD // 4)
        assert snap.encode_s == pytest.approx(0.001 * total)
        assert snap.route_s == pytest.approx(0.0005 * total)
        assert snap.decode_s == pytest.approx(0.002 * total)
        assert snap.coalescing_ratio == pytest.approx(4.0)
