"""Tenant isolation, end to end: wire, server, database, supervisor.

The properties `docs/tenancy.md` promises: an untenanted envelope is
byte-identical to the pre-tenant wire format, a corrupt tenant id is
rejected at every boundary, two tenants serving the same family persist
distinct records and warm-hit only their own, tenant-scoped eviction and
invalidation of A leave B warm, and a tenant over quota gets
``QuotaExceededError`` while another tenant keeps serving.
"""

import dataclasses
import json

import pytest

from repro.errors import ProtocolError, QuotaExceededError
from repro.serve import KernelServer, ServeRequest, ShardSupervisor, serve_many
from repro.serve import protocol
from repro.serve.server import serve_key
from repro.tenancy import DEFAULT_TENANT, TenantConfig

BAD_TENANTS = ["", "a::b", "a/b", "a b"]

REQUEST = ServeRequest(kind="ntt", bits=128, size=16)


def round_trip(message):
    return protocol.decode_message(protocol.encode_message(message))


@pytest.fixture
def server():
    with KernelServer(devices=("rtx4090",), workers=2) as instance:
        yield instance


class TestWireTenantField:
    def test_untenanted_envelope_is_byte_identical(self):
        # The tenant field must not appear for the default tenant: that is
        # what makes a v1-era peer (and a pre-tenant capture) interoperate.
        implicit = protocol.encode_message(
            protocol.ServeCall(request_id=1, request=REQUEST)
        )
        explicit = protocol.encode_message(
            protocol.ServeCall(request_id=1, request=REQUEST, tenant=DEFAULT_TENANT)
        )
        assert implicit == explicit
        assert "tenant" not in json.loads(implicit)["payload"]

    def test_absent_tenant_decodes_as_default(self):
        decoded = round_trip(protocol.ServeCall(request_id=1, request=REQUEST))
        assert decoded.tenant == DEFAULT_TENANT

    def test_tenanted_call_round_trips(self):
        decoded = round_trip(
            protocol.ServeCall(request_id=7, request=REQUEST, tenant="acme")
        )
        assert decoded.tenant == "acme"

    @pytest.mark.parametrize("tenant", BAD_TENANTS)
    def test_present_but_invalid_tenant_is_rejected(self, tenant):
        envelope = json.loads(
            protocol.encode_message(protocol.ServeCall(request_id=1, request=REQUEST))
        )
        envelope["payload"]["tenant"] = tenant
        with pytest.raises(ProtocolError, match="tenant"):
            protocol.decode_message(json.dumps(envelope).encode())

    def test_unknown_additive_fields_are_ignored(self):
        # Fuzz the additive-field discipline: a newer peer's extra keys
        # must not break an older decoder.
        envelope = json.loads(
            protocol.encode_message(
                protocol.ServeCall(request_id=1, request=REQUEST, tenant="acme")
            )
        )
        envelope["payload"]["a-future-field"] = {"anything": 1}
        decoded = protocol.decode_message(json.dumps(envelope).encode())
        assert decoded.tenant == "acme"

    def test_control_messages_round_trip(self):
        call = round_trip(
            protocol.ControlCall(
                request_id=3,
                action=protocol.CONTROL_INVALIDATE,
                tenant="acme",
                refresh=True,
            )
        )
        assert (call.action, call.tenant, call.refresh) == (
            protocol.CONTROL_INVALIDATE,
            "acme",
            True,
        )
        reply = round_trip(
            protocol.ControlReply(request_id=3, report={"kind": "invalidation"})
        )
        assert reply.report == {"kind": "invalidation"}

    def test_stats_tenant_breakdown_round_trips_and_degrades(self):
        block = {
            "requests": 2,
            "warm_serves": 1,
            "cold_serves": 1,
            "dedup_hits": 0,
            "errors": 0,
            "warm_histogram": [0] * 4,
            "cold_histogram": [0] * 4,
        }
        stats = protocol.ShardStats(
            shard_id=0, pid=1, requests=2, warm_serves=1, cold_serves=1,
            dedup_hits=0, errors=0, tune_batches=1, batched_tunes=1,
            queue_depth=0, resident_kernels=1,
            warm_histogram=(0,) * 4, cold_histogram=(0,) * 4,
            tenants={"acme": block},
        )
        reply = round_trip(protocol.StatsReply(request_id=1, stats=stats))
        assert "acme" in reply.stats.tenants
        # A malformed breakdown entry is dropped tolerantly, not fatal:
        # the stats path must survive a newer peer's schema.
        envelope = json.loads(
            protocol.encode_message(protocol.StatsReply(request_id=1, stats=stats))
        )
        envelope["payload"]["stats"]["tenants"]["bad::id"] = block
        envelope["payload"]["stats"]["tenants"]["acme"] = "not a dict"
        decoded = protocol.decode_message(json.dumps(envelope).encode())
        assert decoded.stats.tenants == {}

    def test_quota_error_survives_the_wire(self):
        reply = round_trip(
            protocol.ErrorReply.from_exception(
                1, QuotaExceededError("tenant 'a' over rate quota")
            )
        )
        assert isinstance(reply.exception(), QuotaExceededError)


class TestClientValidation:
    @pytest.mark.parametrize("tenant", BAD_TENANTS)
    def test_submit_rejects_bad_tenants_before_enqueueing(self, server, tenant):
        with pytest.raises(ValueError):
            server.submit(REQUEST, tenant=tenant)
        assert server.metrics.snapshot().requests == 0

    def test_serve_many_rejects_bad_tenants(self, server):
        with pytest.raises(ValueError):
            serve_many(server, [REQUEST], tenant="a::b")


class TestServerIsolation:
    def test_tenants_warm_hit_only_their_own_namespace(self, server):
        assert not server.serve(REQUEST, tenant="a").warm
        assert server.serve(REQUEST, tenant="a").warm
        # Tenant b's identical request is a *distinct* resident entry.
        assert not server.serve(REQUEST, tenant="b").warm
        assert server.serve(REQUEST, tenant="b").warm
        assert serve_key("a", REQUEST) != serve_key("b", REQUEST)
        assert serve_key(DEFAULT_TENANT, REQUEST) == REQUEST.key()

    def test_two_tenants_persist_distinct_records(self, server):
        server.serve(REQUEST, tenant="a")
        server.serve(REQUEST, tenant="b")
        by_tenant = {
            record.tenant: key for key, record in server.db.records().items()
        }
        assert set(by_tenant) == {"a", "b"}
        assert by_tenant["a"].startswith("a::")
        assert by_tenant["b"].startswith("b::")

    def test_lookup_falls_back_to_the_shared_namespace(self, server):
        server.serve(REQUEST)  # default-tenant tuning stores the shared winner
        workload = REQUEST.workload()
        shared = server.db.lookup(workload, "rtx4090")
        assert shared is not None and shared.tenant == DEFAULT_TENANT
        # A tenant with no record of its own inherits the shared winner
        # (which is also why serving under a fresh tenant skips the search)...
        assert server.db.lookup(workload, "rtx4090", tenant="c") is shared
        assert server.serve(REQUEST, tenant="c").tuning.from_database
        # ...until a tenant-scoped record shadows it, for that tenant only.
        server.db.store(dataclasses.replace(shared, tenant="c"))
        own = server.db.lookup(workload, "rtx4090", tenant="c")
        assert own.tenant == "c"
        assert server.db.lookup(workload, "rtx4090") is shared

    def test_evicting_one_tenant_leaves_the_other_warm(self, server):
        for tenant in ("a", "b"):
            server.serve(REQUEST, tenant=tenant)
        assert server.evict_tenant("a") == 1
        assert not server.serve(REQUEST, tenant="a").warm
        assert server.serve(REQUEST, tenant="b").warm

    def test_tenant_scoped_invalidation_leaves_the_other_warm(self, server):
        for tenant in ("a", "b"):
            server.serve(REQUEST, tenant=tenant)
        # Age tenant a's record so only a's namespace has anything stale.
        key_a = next(
            key for key, record in server.db.records().items()
            if record.tenant == "a"
        )
        stale = dataclasses.replace(server.db.records()[key_a], tuner_version=0)
        server.db.store(stale)
        report = server.invalidate(tenant="a")
        assert report.stale_version == 1
        assert not server.serve(REQUEST, tenant="a").warm
        assert server.serve(REQUEST, tenant="b").warm


class TestSupervisorQuota:
    @pytest.fixture(scope="class")
    def cluster(self):
        supervisor = ShardSupervisor(
            shards=1,
            devices=("rtx4090",),
            workers=2,
            tenants=(TenantConfig(tenant="limited", rate_rps=1),),
        )
        yield supervisor
        supervisor.close()

    def test_over_quota_tenant_rejected_other_keeps_serving(self, cluster):
        result = cluster.serve(REQUEST, tenant="limited")
        assert result.artifact is not None
        # Second request inside the same one-second window: rejected
        # synchronously, before it touches the ring.
        with pytest.raises(QuotaExceededError):
            cluster.submit(REQUEST, tenant="limited")
        # The unthrottled tenant is completely unaffected.
        assert cluster.serve(REQUEST, tenant="free").artifact is not None
        assert cluster.tenants.snapshot()["limited"]["rejected"] >= 1
        assert cluster.tenants.rejected("free") == 0

    def test_cluster_stats_carry_per_tenant_rollups(self, cluster):
        stats = cluster.stats()
        assert {"limited", "free"} <= set(stats.tenants)
        limited = stats.tenants["limited"]
        assert limited["requests"] >= 1
        assert limited["rejected"] >= 1
        assert "tenant limited" in stats.report() or "limited" in stats.report()
