"""ShardSupervisor end to end: real shard processes behind the router.

The acceptance property of the sharded tier lives here: requests for many
kernel families are served across two real shard processes, repeats are
answered warm *by the owning shard*, per-shard tuning-db replicas are
reconciled into the primary on close, and stats aggregate across the wire.
These tests spawn OS processes and are the slowest in the suite — one
module-scoped cluster serves all the read-mostly tests.
"""

import time

import pytest

from repro.errors import ReproError, ServingError
from repro.serve import ClusterStats, ServedNTT, ServeRequest, ShardSupervisor
from repro.serve import protocol
from repro.tune import TuningDatabase, replica_path

SIZE = 16

#: Enough distinct kernel families that consistent hashing all but surely
#: spreads them over two shards (the hash is deterministic, so if the IR —
#: and with it the fingerprints — ever changes and this lands lopsided,
#: widen the mix).
FAMILY_MIX = [
    ServeRequest(kind="ntt", bits=64, size=SIZE),
    ServeRequest(kind="ntt", bits=128, size=SIZE),
    ServeRequest(kind="ntt", bits=128, size=SIZE, operation="gentleman_sande"),
    ServeRequest(kind="ntt", bits=256, size=SIZE),
    ServeRequest(kind="blas", bits=64, operation="vadd"),
    ServeRequest(kind="blas", bits=128, operation="vmul"),
    ServeRequest(kind="blas", bits=128, operation="vsub"),
    ServeRequest(kind="blas", bits=256, operation="axpy"),
]


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    db = tmp_path_factory.mktemp("shard-dbs") / "tuning.json"
    supervisor = ShardSupervisor(shards=2, db=db, devices=("rtx4090",), workers=2)
    results = [supervisor.serve(request) for request in FAMILY_MIX]
    yield supervisor, results, db
    supervisor.close()


class TestRoutedServing:
    def test_all_families_served(self, cluster):
        supervisor, results, _ = cluster
        assert len(results) == len(FAMILY_MIX)
        for request, result in zip(FAMILY_MIX, results):
            assert result.request == request
            assert result.artifact is not None
            assert result.tuning is not None

    def test_traffic_crossed_both_shards(self, cluster):
        supervisor, _, _ = cluster
        routed = supervisor.routed_counts()
        assert sum(routed.values()) >= len(FAMILY_MIX)
        assert set(routed) == {0, 1}, f"all traffic landed on {set(routed)}"

    def test_repeat_requests_are_warm(self, cluster):
        supervisor, _, _ = cluster
        for request in FAMILY_MIX[:3]:
            assert supervisor.serve(request).warm

    def test_routing_is_sticky(self, cluster):
        # The same family must keep hitting the same shard (that is what
        # makes its resident table worth anything).
        supervisor, _, _ = cluster
        shard = supervisor.router.route(FAMILY_MIX[0])
        for _ in range(3):
            assert supervisor.router.route(FAMILY_MIX[0]) == shard

    def test_pickled_artifacts_are_executable(self, cluster):
        supervisor, results, _ = cluster
        artifact = results[0].artifact
        limbs = tuple(range(len(artifact.kernel.params)))
        assert isinstance(artifact.call_limbs(*limbs), tuple)


class TestAggregatedStats:
    def test_totals_are_sums_of_shards(self, cluster):
        supervisor, _, _ = cluster
        stats = supervisor.stats()
        assert isinstance(stats, ClusterStats)
        assert len(stats.shards) == 2
        for field in ("requests", "warm_serves", "cold_serves", "resident_kernels"):
            per_shard = sum(getattr(shard, field) for shard in stats.shards)
            assert getattr(stats, field) == per_shard
        assert stats.requests >= len(FAMILY_MIX)
        assert stats.cold_serves >= len(FAMILY_MIX)

    def test_merged_percentiles_are_populated(self, cluster):
        supervisor, _, _ = cluster
        stats = supervisor.stats()
        assert stats.p95_latency_ms >= stats.p50_latency_ms > 0.0
        assert "cluster" in stats.report()

    def test_ping_reaches_every_shard(self, cluster):
        supervisor, _, _ = cluster
        pongs = supervisor.ping()
        assert set(pongs) == {0, 1}
        assert pongs[0].pid != pongs[1].pid  # real separate processes


class TestErrorRelay:
    def test_shard_side_failure_raises_repro_error_here(self, cluster):
        supervisor, _, _ = cluster
        bad = ServeRequest(kind="ntt", bits=128, size=SIZE, target="no-such-target")
        with pytest.raises(ReproError):
            supervisor.serve(bad)

    def test_invalid_request_fails_before_the_wire(self, cluster):
        supervisor, _, _ = cluster
        with pytest.raises(ReproError):
            supervisor.serve(ServeRequest(kind="ntt", bits=128, size=3))


class TestClientHook:
    def test_served_ntt_round_trips_through_the_cluster(self, cluster):
        supervisor, _, _ = cluster
        ntt = ServedNTT(supervisor, size=SIZE, bits=128)
        values = list(range(SIZE))
        assert ntt.inverse(ntt.forward(values)) == values


class TestLifecycle:
    def test_restart_after_shard_death(self):
        with ShardSupervisor(shards=2, devices=("rtx4090",), workers=2) as supervisor:
            request = ServeRequest(kind="ntt", bits=128, size=SIZE)
            supervisor.serve(request)
            victim = supervisor.router.route(request)
            handle = supervisor._handles[victim]
            handle.process.kill()
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and not (
                handle.restarts >= 1 and handle.alive()
            ):
                time.sleep(0.05)
            assert handle.restarts >= 1
            assert handle.alive()
            # The family is served again — cold (the respawned shard's
            # resident table is empty) or by a ring successor, but served.
            result = supervisor.serve(request)
            assert result.request == request

    def test_submit_after_close_rejected(self):
        supervisor = ShardSupervisor(shards=1, devices=("rtx4090",), workers=1)
        supervisor.close()
        with pytest.raises(ServingError, match="closed"):
            supervisor.submit(ServeRequest(kind="ntt", bits=128, size=SIZE))

    def test_close_reconciles_replicas_into_primary(self, tmp_path):
        db = tmp_path / "tuning.json"
        supervisor = ShardSupervisor(shards=2, db=db, devices=("rtx4090",), workers=2)
        try:
            for request in FAMILY_MIX[:4]:
                supervisor.serve(request)
        finally:
            report = supervisor.close()
        assert report is not None
        assert db.exists()
        primary = TuningDatabase(db)
        assert len(primary) >= 4  # winners from *both* shards survived
        assert sum(report.adopted) >= 4

    def test_validation(self):
        with pytest.raises(ServingError, match="shard count"):
            ShardSupervisor(shards=0)
        with pytest.raises(ServingError, match="device"):
            ShardSupervisor(shards=1, devices=())
        with pytest.raises(ServingError, match="partition"):
            ShardSupervisor(shards=2, devices=("rtx4090",), partition_devices=True)


class TestRobustness:
    def test_cancelled_future_does_not_wedge_the_reader(self):
        # A client cancelling its future must not kill the reader thread
        # when the shard's reply arrives (regression: InvalidStateError).
        with ShardSupervisor(shards=1, devices=("rtx4090",), workers=2) as supervisor:
            request = ServeRequest(kind="ntt", bits=128, size=SIZE)
            supervisor.submit(request).cancel()
            result = supervisor.submit(request).result(timeout=120)
            assert result.request == request

    def test_probe_of_a_dead_shard_raises_serving_error(self):
        # Probes must fail inside the ReproError hierarchy (the CLI's catch)
        # and clean up their pending entry — never a raw TimeoutError.
        supervisor = ShardSupervisor(shards=1, devices=("rtx4090",), workers=1)
        try:
            handle = supervisor._handles[0]
            handle.process.kill()
            with pytest.raises(ServingError):
                supervisor._probe(handle, protocol.StatsCall, timeout=2.0)
            assert not handle.pending
        finally:
            supervisor.close()

    def test_corrupt_replica_is_quarantined_not_crash_looped(self, tmp_path):
        # A torn replica file (crashed writer) must not make the shard die
        # at startup forever: it is renamed *.corrupt and serving proceeds.
        db = tmp_path / "tuning.json"
        replica = replica_path(db, 0)
        replica.write_text("{torn json")
        supervisor = ShardSupervisor(shards=1, db=db, devices=("rtx4090",), workers=1)
        try:
            result = supervisor.serve(ServeRequest(kind="ntt", bits=128, size=SIZE))
            assert result.artifact is not None
            assert replica.with_name(replica.name + ".corrupt").exists()
            assert supervisor._handles[0].restarts == 0
        finally:
            supervisor.close()


class TestRestartBackoff:
    def test_schedule_first_attempt_is_immediate(self):
        # The documented schedule: attempt 1 immediate, then exponential
        # from 0.5 s, capped at the maximum — pinned so the spec and the
        # code cannot drift apart again.
        from repro.serve.supervisor import _RESTART_BACKOFF_MAX_S, _restart_backoff

        schedule = [_restart_backoff(attempt) for attempt in range(1, 11)]
        assert schedule == [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 30.0, 30.0]
        assert schedule[0] == 0.0  # one crash must not stall traffic
        assert max(schedule) == _RESTART_BACKOFF_MAX_S
        # Monotone non-decreasing and capped forever after.
        assert schedule == sorted(schedule)
        assert _restart_backoff(100) == _RESTART_BACKOFF_MAX_S

    def test_first_respawn_happens_without_waiting(self):
        # End to end: a fresh handle's first recovery must respawn in the
        # same monitor tick (next_restart_at stays 0.0 until attempt 1).
        from repro.serve.supervisor import _restart_backoff

        supervisor = ShardSupervisor(shards=1, devices=("rtx4090",), workers=1)
        try:
            handle = supervisor._handles[0]
            assert handle.next_restart_at == 0.0  # attempt 1 gated on nothing
            handle.process.kill()
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and handle.restarts < 1:
                time.sleep(0.02)
            assert handle.restarts == 1
            # The *next* attempt (2) is scheduled 0.5 s out, not 1.0 s.
            slack = handle.next_restart_at - time.monotonic()
            assert slack <= _restart_backoff(2) + 0.1
        finally:
            supervisor.close()


class TestQuarantineAging:
    def test_close_drops_aged_quarantine_files(self, tmp_path, monkeypatch, caplog):
        # Quarantined replicas (*.corrupt) must not accumulate forever: a
        # supervisor close() ages them out and logs what it dropped.
        import logging

        import repro.tune.reconcile as reconcile_module

        monkeypatch.setattr(reconcile_module, "QUARANTINE_RETENTION_S", 0.0)
        db = tmp_path / "tuning.json"
        stale = replica_path(db, 7).with_name(replica_path(db, 7).name + ".corrupt")
        stale.write_text("{torn json")
        supervisor = ShardSupervisor(shards=1, db=db, devices=("rtx4090",), workers=1)
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            supervisor.close()
        assert not stale.exists()
        assert any("quarantined replica" in record.message for record in caplog.records)

    def test_close_keeps_fresh_quarantine_files(self, tmp_path):
        # Inside the retention window the post-mortem evidence survives.
        db = tmp_path / "tuning.json"
        fresh = replica_path(db, 3).with_name(replica_path(db, 3).name + ".corrupt")
        fresh.write_text("{torn json")
        supervisor = ShardSupervisor(shards=1, db=db, devices=("rtx4090",), workers=1)
        supervisor.close()
        assert fresh.exists()
