"""One client call → one merged trace, across a real two-shard TCP cluster.

The tentpole acceptance property of ``repro.obs``: a traced request
entering the supervisor produces a single trace id whose spans cover the
supervisor's routing and both wire directions, the serving shard's work
(adopted via the envelope's additive ``trace`` field), and — on a cold
request whose lowering runs under the trace — the compiler's per-pass
child spans.  ``ShardSupervisor.drain_spans`` pulls all of it into one
process via the ``StatsCall`` span-drain mode, and the merged set exports
as a Chrome trace-event document that validates.

Interop rides along: the ``trace`` field is *additive*, so a v1 JSON
envelope without it (an old peer) still decodes, a traced v2 supervisor
forced down to protocol v1 still gets a merged trace, and an untraced
supervisor sends byte-identical envelopes to the pre-tracing wire format.
"""

import pytest

from repro.obs.export import chrome_trace, spans_from_chrome_trace
from repro.obs.trace import Tracer
from repro.serve import ServeRequest, ShardSupervisor
from repro.serve import protocol

from tests.serve.test_tcp_transport import start_listener, shut_down_listener

SIZE = 16

#: Cold and pinned (tune=False): lowering runs inside the traced request's
#: worker — the autotuner would otherwise pre-populate the lowering cache
#: from its own (untraced) batcher thread and hide the pass spans.
PINNED = ServeRequest(kind="ntt", bits=64, size=SIZE, tune=False)

#: A second family, tuned, to spread traffic across the ring.
TUNED = ServeRequest(kind="blas", bits=128, operation="vmul")


@pytest.fixture(scope="module")
def traced_cluster():
    """Two TCP shards, a force-tracing supervisor, and its drained spans."""
    listeners = [start_listener(shard_id=index) for index in range(2)]
    supervisor = ShardSupervisor(
        shards=0,
        devices=("rtx4090",),
        connect=tuple(address for address, _ in listeners),
        tracer=Tracer(sample_rate=1.0),
    )
    results = [supervisor.serve(PINNED), supervisor.serve(TUNED)]
    spans = supervisor.drain_spans()
    yield supervisor, results, spans
    supervisor.close()
    for address, thread in listeners:
        shut_down_listener(address, thread)


def spans_of(spans, request_index: int, supervisor):
    """The spans belonging to the ``request_index``-th request's trace."""
    roots = sorted(
        (one for one in spans if one.name == "cluster.request"),
        key=lambda one: one.ts_us,
    )
    trace_id = roots[request_index].trace_id
    return [one for one in spans if one.trace_id == trace_id]


class TestMergedTrace:
    def test_one_trace_id_per_request(self, traced_cluster):
        supervisor, results, spans = traced_cluster
        assert all(result.artifact is not None for result in results)
        roots = [one for one in spans if one.name == "cluster.request"]
        assert len(roots) == 2
        assert len({one.trace_id for one in roots}) == 2

    def test_trace_covers_supervisor_wire_and_shard(self, traced_cluster):
        supervisor, _, spans = traced_cluster
        trace = spans_of(spans, 0, supervisor)
        names = {one.name for one in trace}
        assert {"cluster.request", "route", "shard.serve"} <= names
        # Both wire directions, on both sides of the socket.
        assert sum(one.name == "wire.encode" for one in trace) == 2
        assert sum(one.name == "wire.decode" for one in trace) == 2
        # Supervisor and shard are different "processes" in the export
        # sense (shard spans carry the shard_id annotation).
        shard_ids = {
            one.args["shard_id"] for one in trace if "shard_id" in one.args
        }
        assert len(shard_ids) == 1

    def test_shard_root_is_a_child_of_the_supervisor_root(self, traced_cluster):
        supervisor, _, spans = traced_cluster
        trace = spans_of(spans, 0, supervisor)
        root = next(one for one in trace if one.name == "cluster.request")
        shard_root = next(one for one in trace if one.name == "shard.serve")
        assert shard_root.parent_id == root.span_id
        assert root.parent_id == ""

    def test_cold_pinned_request_has_compiler_pass_spans(self, traced_cluster):
        supervisor, _, spans = traced_cluster
        trace = spans_of(spans, 0, supervisor)
        names = {one.name for one in trace}
        assert "serve.compile" in names
        assert "compile.legalize" in names
        assert "compile.emit" in names
        assert any(name.startswith("pass.") for name in names)
        for one in trace:
            if one.name.startswith("pass.") or one.name.startswith("compile."):
                assert one.cat == "compile"

    def test_traffic_crossed_both_shards(self, traced_cluster):
        supervisor, _, spans = traced_cluster
        shard_ids = {
            one.args["shard_id"] for one in spans if "shard_id" in one.args
        }
        # Two families on a two-shard ring: the fixture mix is chosen to
        # spread; if routing ever co-locates both, the merged trace still
        # has every span — only this distribution check would weaken.
        assert shard_ids == {0, 1}

    def test_merged_spans_export_as_a_valid_chrome_trace(self, traced_cluster):
        _, _, spans = traced_cluster
        rebuilt = spans_from_chrome_trace(chrome_trace(spans))
        assert sorted(one.span_id for one in rebuilt) == sorted(
            one.span_id for one in spans
        )

    def test_drain_is_destructive(self, traced_cluster):
        supervisor, _, _ = traced_cluster
        assert supervisor.drain_spans() == ()


class TestMixedVersionRing:
    def test_v1_wire_still_merges_a_full_trace(self):
        """A traced supervisor forced to protocol v1 loses nothing."""
        listeners = [start_listener(shard_id=index) for index in range(2)]
        supervisor = ShardSupervisor(
            shards=0,
            devices=("rtx4090",),
            connect=tuple(address for address, _ in listeners),
            max_protocol=protocol.PROTOCOL_VERSION,
            tracer=Tracer(sample_rate=1.0),
        )
        try:
            result = supervisor.serve(PINNED)
            assert result.artifact is not None
            spans = supervisor.drain_spans()
            names = {one.name for one in spans}
            assert {"cluster.request", "shard.serve", "serve.compile"} <= names
            assert len({one.trace_id for one in spans}) == 1
        finally:
            supervisor.close()
            for address, thread in listeners:
                shut_down_listener(address, thread)


class TestAdditiveProtocolField:
    """The wire-format interop contracts, without needing an old binary."""

    CALL = protocol.ServeCall(request_id=7, request=PINNED)

    def test_untraced_envelope_is_byte_identical_to_pre_tracing_wire(self):
        # trace=None must not emit a key: an untraced v2 supervisor talks
        # to any peer exactly as the pre-tracing protocol did.
        data = protocol.encode_message(self.CALL)
        assert b'"trace"' not in data

    def test_payload_without_the_field_decodes_as_untraced(self):
        # What a v1 peer that predates tracing sends.
        data = protocol.encode_message(self.CALL)
        decoded = protocol.decode_message(data)
        assert decoded.trace is None
        assert decoded.request == PINNED

    @pytest.mark.parametrize("version", [1, 2])
    def test_traced_envelope_roundtrips_on_both_versions(self, version):
        field = {"id": "abc123", "span": "1f.1", "sampled": True}
        call = protocol.ServeCall(request_id=8, request=PINNED, trace=field)
        decoded = protocol.decode_message(
            protocol.encode_message(call, version=version)
        )
        assert decoded.trace == field

    def test_malformed_trace_field_decodes_as_untraced(self):
        call = protocol.ServeCall(request_id=9, request=PINNED, trace={"id": "x"})
        encoded = protocol.encode_message(call)
        data = encoded.replace(b'{"id": "x"}', b'"garbage"')
        assert data != encoded  # the corruption actually landed
        decoded = protocol.decode_message(data)
        assert decoded.trace is None

    def test_stats_call_drain_flag_defaults_off_for_old_peers(self):
        data = protocol.encode_message(protocol.StatsCall(request_id=1))
        assert b"drain_spans" in data  # new field rides the envelope
        decoded = protocol.decode_message(data)
        assert decoded.drain_spans is False

    def test_stats_reply_spans_ride_only_when_present(self):
        import dataclasses

        stats = protocol.ShardStats(
            shard_id=0,
            pid=1,
            requests=1,
            warm_serves=0,
            cold_serves=1,
            dedup_hits=0,
            errors=0,
            tune_batches=0,
            batched_tunes=0,
            queue_depth=0,
            resident_kernels=1,
            warm_histogram=(0,) * 26,
            cold_histogram=(0,) * 26,
        )
        empty = protocol.StatsReply(request_id=1, stats=stats)
        assert b'"spans"' not in protocol.encode_message(empty)
        assert protocol.decode_message(protocol.encode_message(empty)).spans == ()

        loaded = dataclasses.replace(
            empty,
            spans=(
                {
                    "trace": "t",
                    "span": "s",
                    "parent": "",
                    "name": "n",
                    "cat": "serve",
                    "ts": 1.0,
                    "dur": 2.0,
                    "proc": 1,
                    "thread": 1,
                    "args": {},
                },
            ),
        )
        decoded = protocol.decode_message(protocol.encode_message(loaded))
        assert decoded.spans == loaded.spans
