"""``python -m repro.serve`` CLI: request modes, warmup, demo, errors."""

import json

from repro.serve.cli import main

NTT_ARGS = ["--once", "ntt", "--bits", "128", "--size", "16"]


class TestOnce:
    def test_ntt_request(self, capsys):
        assert main(NTT_ARGS) == 0
        out = capsys.readouterr().out
        assert "served      ntt/cooley_tukey/n16/128b" in out
        assert "tuning" in out
        assert "cold" in out

    def test_blas_request_no_tune(self, capsys):
        assert main(["--once", "blas", "--bits", "128", "--op", "vadd", "--no-tune"]) == 0
        out = capsys.readouterr().out
        assert "served      blas/vadd/" in out
        assert "tuning" not in out

    def test_cuda_target(self, capsys):
        assert main(NTT_ARGS + ["--target", "cuda"]) == 0
        assert "target      cuda" in capsys.readouterr().out

    def test_stats_flag_prints_metrics(self, capsys):
        assert main(NTT_ARGS + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "requests      1" in out
        assert "resident kernels" in out


class TestWarmupFlow:
    def test_tune_then_warm_across_processes(self, tmp_path, capsys):
        db = str(tmp_path / "db.json")
        assert main(NTT_ARGS + ["--db", db]) == 0
        capsys.readouterr()

        # A fresh "process": warm from the database, then serve warm.
        assert main(["--warmup", "--db", db] + NTT_ARGS + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "warmup: 1/1 records warmed" in out
        assert "serve       warm" in out

        payload = json.loads((tmp_path / "db.json").read_text())
        assert len(payload["records"]) == 1

    def test_invalidate_on_fresh_db_is_clean(self, tmp_path, capsys):
        db = str(tmp_path / "db.json")
        assert main(NTT_ARGS + ["--db", db]) == 0
        capsys.readouterr()
        assert main(["--invalidate", "--refresh", "--db", db]) == 0
        assert "0/1 records stale" in capsys.readouterr().out


class TestDemoAndErrors:
    def test_demo_traffic(self, capsys):
        assert main(["--demo", "8", "--size", "16", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "demo        8 requests" in out
        assert "requests      8" in out

    def test_bare_demo_uses_the_default_count(self, capsys):
        assert main(["--demo", "--size", "16"]) == 0
        assert "demo        16 requests" in capsys.readouterr().out

    def test_no_action_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage:" in capsys.readouterr().out

    def test_domain_error_is_reported(self, capsys):
        assert main(["--once", "ntt", "--bits", "128", "--size", "3"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_help_mentions_shard_mode(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "--shards" in out
        assert "shard" in out


class TestShardMode:
    def test_demo_routes_across_two_shards(self, tmp_path, capsys):
        db = str(tmp_path / "db.json")
        assert main(
            ["--shards", "2", "--demo", "8", "--size", "16", "--stats", "--db", db]
        ) == 0
        out = capsys.readouterr().out
        assert "demo        8 requests" in out
        assert "routing     shard" in out
        assert "cluster       2 shards" in out
        assert "reconciled 2 replica(s)" in out
        payload = json.loads((tmp_path / "db.json").read_text())
        assert len(payload["records"]) >= 1

    def test_warmup_broadcasts_in_shard_mode(self, tmp_path, capsys):
        # The control plane made --warmup a per-shard broadcast (it used to
        # be rejected outside single-process mode): every shard answers
        # with its own warmup report line.
        db = str(tmp_path / "db.json")
        assert main(["--shards", "2", "--warmup", "--db", db]) == 0
        out = capsys.readouterr().out
        assert out.count("warmup     shard") == 2

    def test_nonpositive_shards_rejected(self, capsys):
        assert main(["--shards", "0", "--demo", "4"]) == 2
        assert "shard count" in capsys.readouterr().err


class TestTcpFlags:
    def test_listen_excludes_supervisor_actions(self, capsys):
        assert main(["--listen", "127.0.0.1:0", "--demo", "4"]) == 2
        assert "--listen" in capsys.readouterr().err

    def test_listen_with_unparsable_port_rejected(self, capsys):
        assert main(["--listen", "127.0.0.1:notaport"]) == 2
        assert "[host:]port" in capsys.readouterr().err

    def test_connect_to_unreachable_shard_fails_cleanly(self, capsys):
        # A dead remote must surface as a CLI error, not a traceback.
        import socket

        with socket.socket() as placeholder:
            placeholder.bind(("127.0.0.1", 0))
            free_port = placeholder.getsockname()[1]
        assert main(
            ["--connect", f"127.0.0.1:{free_port}", "--demo", "4"]
        ) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_connect_and_listen_cli_end_to_end(self, tmp_path):
        # One listener subprocess, one supervisor run through main():
        # the CI smoke mirrored inside the suite.
        import re
        import subprocess
        import sys as _sys

        listener = subprocess.Popen(
            [_sys.executable, "-m", "repro.serve", "--listen", "127.0.0.1:0",
             "--workers", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = listener.stdout.readline()
            address = re.search(r"listening on (\S+)", banner).group(1)
            assert main(
                ["--connect", address, "--once", "ntt", "--bits", "64",
                 "--size", "16", "--stats"]
            ) == 0
        finally:
            listener.kill()
            listener.wait(timeout=30)
