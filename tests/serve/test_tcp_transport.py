"""The shard tier over real localhost TCP sockets, end to end.

The acceptance properties of the network transport live here: a supervisor
serves requests through ≥2 shards over TCP, the handshake pins the protocol
version and negotiates trust (source-only by default — pickled artifacts
are rejected on untrusted transports while source text round-trips),
killing a remote shard's connection re-routes its keys to ring successors
without hanging in-flight futures, and a listener survives a supervisor
disconnect (re-accept) and a bad handshake.

TCP shards run as in-process listener threads (each owns a real
``KernelServer``): the bytes cross real sockets exactly as they would
between machines, without per-test process spawn cost.
"""

import json
import queue
import socket
import threading
import time

import pytest

from repro.errors import ReproError, ServingError
from repro.serve import ServeRequest, ShardSupervisor, serve_shard_tcp
from repro.serve import protocol

SIZE = 16

#: Distinct kernel families, enough to all but surely spread over 2 shards.
FAMILY_MIX = [
    ServeRequest(kind="ntt", bits=64, size=SIZE),
    ServeRequest(kind="ntt", bits=128, size=SIZE),
    ServeRequest(kind="ntt", bits=128, size=SIZE, operation="gentleman_sande"),
    ServeRequest(kind="ntt", bits=256, size=SIZE),
    ServeRequest(kind="blas", bits=64, operation="vadd"),
    ServeRequest(kind="blas", bits=128, operation="vmul"),
    ServeRequest(kind="blas", bits=256, operation="axpy"),
]


def start_listener(
    trust=protocol.TRUST_SOURCE,
    shard_id=0,
    workers=2,
    max_protocol=protocol.MAX_PROTOCOL_VERSION,
):
    """One TCP shard in a daemon thread; returns (address, thread)."""
    bound: queue.Queue = queue.Queue()
    thread = threading.Thread(
        target=serve_shard_tcp,
        kwargs=dict(
            host="127.0.0.1",
            port=0,
            shard_id=shard_id,
            workers=workers,
            trust=trust,
            max_protocol=max_protocol,
            on_bound=bound.put,
        ),
        daemon=True,
    )
    thread.start()
    return bound.get(timeout=30), thread


def shut_down_listener(address, thread):
    """Stop a listener the way an operator would: hello, then shutdown."""
    try:
        sock = socket.create_connection(address, timeout=5)
    except OSError:
        return  # already gone
    connection = protocol.StreamConnection(sock)
    try:
        connection.send_bytes(
            protocol.encode_message(
                protocol.HelloCall(
                    request_id=1,
                    protocol_version=protocol.PROTOCOL_VERSION,
                    shard_id=-1,
                    trust=protocol.TRUST_SOURCE,
                )
            )
        )
        connection.recv_bytes()  # the hello reply
        connection.send_bytes(
            protocol.encode_message(protocol.ShutdownCall(request_id=2))
        )
    except (OSError, EOFError):
        pass
    finally:
        connection.close()
    thread.join(timeout=60)


@pytest.fixture(scope="module")
def tcp_cluster():
    """Two TCP shard listeners and one supervisor connected to both."""
    listeners = [start_listener(shard_id=i) for i in range(2)]
    supervisor = ShardSupervisor(
        shards=0,
        devices=("rtx4090",),
        connect=tuple(address for address, _ in listeners),
    )
    results = [supervisor.serve(request) for request in FAMILY_MIX]
    yield supervisor, results
    supervisor.close()
    for address, thread in listeners:
        shut_down_listener(address, thread)


class TestServingOverTcp:
    def test_all_families_served(self, tcp_cluster):
        _, results = tcp_cluster
        assert len(results) == len(FAMILY_MIX)
        for request, result in zip(FAMILY_MIX, results):
            assert result.request == request
            assert result.tuning is not None

    def test_traffic_crossed_both_shards(self, tcp_cluster):
        supervisor, _ = tcp_cluster
        routed = supervisor.routed_counts()
        assert sum(routed.values()) >= len(FAMILY_MIX)
        assert set(routed) == {0, 1}, f"all traffic landed on {set(routed)}"

    def test_source_only_artifacts_round_trip(self, tcp_cluster):
        # The cross-machine default: executable kernels arrive as their
        # generated source text, never as pickles.
        _, results = tcp_cluster
        for result in results:
            assert isinstance(result.artifact, str)
            assert "def " in result.artifact

    def test_repeat_requests_are_warm(self, tcp_cluster):
        supervisor, _ = tcp_cluster
        for request in FAMILY_MIX[:3]:
            assert supervisor.serve(request).warm

    def test_stats_aggregate_across_tcp_shards(self, tcp_cluster):
        supervisor, _ = tcp_cluster
        stats = supervisor.stats()
        assert len(stats.shards) == 2
        assert stats.requests >= len(FAMILY_MIX)
        assert stats.cold_serves >= len(FAMILY_MIX)

    def test_ping_reaches_every_shard(self, tcp_cluster):
        supervisor, _ = tcp_cluster
        assert set(supervisor.ping()) == {0, 1}

    def test_shard_side_failure_raises_here(self, tcp_cluster):
        supervisor, _ = tcp_cluster
        bad = ServeRequest(kind="ntt", bits=128, size=SIZE, target="no-such-target")
        with pytest.raises(ReproError):
            supervisor.serve(bad)


class TestHandshake:
    def test_handshake_grants_at_most_listener_policy(self):
        # A source-only listener must downgrade a pickled request to source.
        address, thread = start_listener(trust=protocol.TRUST_SOURCE)
        try:
            supervisor = ShardSupervisor(
                shards=0,
                devices=("rtx4090",),
                connect=(address,),
                remote_trust=protocol.TRUST_PICKLED,
            )
            try:
                result = supervisor.serve(ServeRequest(kind="ntt", bits=64, size=SIZE))
                assert isinstance(result.artifact, str)
            finally:
                supervisor.close()
        finally:
            shut_down_listener(address, thread)

    def test_pickled_trust_ships_executable_artifacts(self):
        # Both ends opting in: the artifact crosses as an executable kernel.
        address, thread = start_listener(trust=protocol.TRUST_PICKLED)
        try:
            supervisor = ShardSupervisor(
                shards=0,
                devices=("rtx4090",),
                connect=(address,),
                remote_trust=protocol.TRUST_PICKLED,
            )
            try:
                result = supervisor.serve(ServeRequest(kind="ntt", bits=64, size=SIZE))
                limbs = tuple(range(len(result.artifact.kernel.params)))
                assert isinstance(result.artifact.call_limbs(*limbs), tuple)
            finally:
                supervisor.close()
        finally:
            shut_down_listener(address, thread)

    def test_listener_cannot_escalate_granted_trust(self):
        # A malicious listener "granting" pickled on a source-only request
        # must not flip the supervisor into unpickling its payloads: the
        # granted trust is capped at what the supervisor asked for.
        bound: queue.Queue = queue.Queue()

        def lying_listener():
            with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as listener:
                listener.bind(("127.0.0.1", 0))
                listener.listen(1)
                bound.put(listener.getsockname()[:2])
                sock, _ = listener.accept()
                connection = protocol.StreamConnection(sock)
                hello = protocol.decode_message(connection.recv_bytes())
                connection.send_bytes(
                    protocol.encode_message(
                        protocol.HelloReply(
                            request_id=hello.request_id,
                            shard_id=hello.shard_id,
                            pid=1,
                            protocol_version=protocol.PROTOCOL_VERSION,
                            trust=protocol.TRUST_PICKLED,  # the lie
                        )
                    )
                )
                time.sleep(1.0)  # keep the connection up for the assertion
                connection.close()

        thread = threading.Thread(target=lying_listener, daemon=True)
        thread.start()
        supervisor = ShardSupervisor(
            shards=0,
            devices=("rtx4090",),
            connect=(bound.get(timeout=30),),
            remote_trust=protocol.TRUST_SOURCE,
            restart=False,
        )
        try:
            assert supervisor._handles[0].trusted is False
        finally:
            supervisor.close()
            thread.join(timeout=30)

    def test_version_mismatch_is_refused(self):
        address, thread = start_listener()
        try:
            sock = socket.create_connection(address, timeout=5)
            connection = protocol.StreamConnection(sock)
            try:
                connection.send_bytes(
                    protocol.encode_message(
                        protocol.HelloCall(
                            request_id=1,
                            protocol_version=protocol.PROTOCOL_VERSION + 1,
                            shard_id=0,
                            trust=protocol.TRUST_SOURCE,
                        )
                    )
                )
                reply = protocol.decode_message(connection.recv_bytes())
                assert isinstance(reply, protocol.ErrorReply)
                assert "protocol version" in reply.message
            finally:
                connection.close()
            # The listener survives the refusal and accepts a proper peer.
            supervisor = ShardSupervisor(
                shards=0, devices=("rtx4090",), connect=(address,)
            )
            try:
                assert 0 in supervisor.ping()
            finally:
                supervisor.close()
        finally:
            shut_down_listener(address, thread)

    def test_non_hello_first_frame_is_refused(self):
        address, thread = start_listener()
        try:
            sock = socket.create_connection(address, timeout=5)
            connection = protocol.StreamConnection(sock)
            try:
                connection.send_bytes(
                    protocol.encode_message(protocol.PingCall(request_id=1))
                )
                reply = protocol.decode_message(connection.recv_bytes())
                assert isinstance(reply, protocol.ErrorReply)
                assert "hello" in reply.message
            finally:
                connection.close()
        finally:
            shut_down_listener(address, thread)

    def test_unreachable_remote_fails_construction(self):
        with socket.socket() as placeholder:
            placeholder.bind(("127.0.0.1", 0))
            free_port = placeholder.getsockname()[1]
        with pytest.raises(ServingError, match="cannot reach"):
            ShardSupervisor(
                shards=0,
                devices=("rtx4090",),
                connect=(f"127.0.0.1:{free_port}",),
                connect_timeout=0.5,
            )

    def test_bad_addresses_rejected(self):
        with pytest.raises(ServingError, match="host:port"):
            ShardSupervisor(shards=0, devices=("rtx4090",), connect=("nocolon",))
        with pytest.raises(ServingError, match="port"):
            ShardSupervisor(shards=0, devices=("rtx4090",), connect=("host:zap",))


class TestDisconnectRebalance:
    def test_lost_connection_reroutes_to_ring_successor(self):
        # Killing a remote shard's connection must re-route its keys to the
        # surviving shard — in-flight futures resolve, nothing hangs.
        listeners = [start_listener(shard_id=i) for i in range(2)]
        supervisor = ShardSupervisor(
            shards=0,
            devices=("rtx4090",),
            connect=tuple(address for address, _ in listeners),
            restart=False,  # no re-dial: the loss must be absorbed by the ring
        )
        try:
            request = ServeRequest(kind="ntt", bits=128, size=SIZE)
            supervisor.serve(request)
            victim = supervisor.router.route(request)
            survivor = 1 - victim

            in_flight = supervisor.submit(
                ServeRequest(kind="ntt", bits=256, size=SIZE)
            )
            supervisor._handles[victim].connection.close()

            # In-flight work resolves (re-routed if it was on the victim).
            assert in_flight.result(timeout=120).request.bits == 256

            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and victim in supervisor.router.shard_ids:
                time.sleep(0.05)
            assert supervisor.router.shard_ids == (survivor,)

            # The victim's family now routes to — and is served by — the
            # ring successor.
            assert supervisor.router.route(request) == survivor
            assert supervisor.serve(request).request == request
        finally:
            supervisor.close()
            for address, thread in listeners:
                shut_down_listener(address, thread)

    def test_supervisor_reconnects_after_connection_loss(self):
        # With restart enabled the monitor re-dials the listener (which has
        # gone back to accept) and the shard re-joins the ring.
        address, thread = start_listener()
        supervisor = ShardSupervisor(
            shards=0, devices=("rtx4090",), connect=(address,)
        )
        try:
            supervisor.serve(ServeRequest(kind="ntt", bits=64, size=SIZE))
            supervisor._handles[0].connection.close()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                handle = supervisor._handles[0]
                if handle.alive() and 0 in supervisor.router.shard_ids:
                    break
                time.sleep(0.05)
            assert supervisor._handles[0].alive()
            assert supervisor.router.shard_ids == (0,)
            # The listener kept its server warm across the reconnect.
            assert supervisor.serve(ServeRequest(kind="ntt", bits=64, size=SIZE)).warm
        finally:
            supervisor.close()
            shut_down_listener(address, thread)


class TestMixedVersions:
    """v1 and v2 builds interoperating on one wire.

    The rollout story the negotiation exists for: either side of a
    connection may still be a v1-era build (or pinned to v1 by the
    operator), and the pair must land on v1 and keep serving — never
    wedge, never spray binary frames at a JSON-only peer.
    """

    def serve_and_inspect(self, supervisor):
        result = supervisor.serve(ServeRequest(kind="ntt", bits=64, size=SIZE))
        assert result.tuning is not None
        assert isinstance(result.artifact, str)
        return supervisor._handles[0]

    def test_v2_supervisor_v1_listener_negotiates_down(self):
        address, thread = start_listener(max_protocol=protocol.PROTOCOL_VERSION)
        try:
            supervisor = ShardSupervisor(
                shards=0, devices=("rtx4090",), connect=(address,)
            )
            try:
                handle = self.serve_and_inspect(supervisor)
                assert handle.wire_version == protocol.PROTOCOL_VERSION
                # No pooling against a v1 peer: v1-era listeners accept one
                # connection at a time, extra dials would wedge unanswered.
                assert len(handle.links) == 1
            finally:
                supervisor.close()
        finally:
            shut_down_listener(address, thread)

    def test_v1_supervisor_v2_listener_negotiates_down(self):
        address, thread = start_listener()
        try:
            supervisor = ShardSupervisor(
                shards=0,
                devices=("rtx4090",),
                connect=(address,),
                max_protocol=protocol.PROTOCOL_VERSION,
            )
            try:
                handle = self.serve_and_inspect(supervisor)
                assert handle.wire_version == protocol.PROTOCOL_VERSION
                assert len(handle.links) == 1
            finally:
                supervisor.close()
        finally:
            shut_down_listener(address, thread)

    def test_v2_peers_pool_and_speak_binary(self):
        address, thread = start_listener()
        try:
            supervisor = ShardSupervisor(
                shards=0, devices=("rtx4090",), connect=(address,), pool=2
            )
            try:
                handle = self.serve_and_inspect(supervisor)
                assert handle.wire_version == protocol.PROTOCOL_VERSION_2
                assert len(handle.links) == 2
                # Traffic flows over the pooled links and the wire profile
                # sees it: coalesced flushes never exceed messages sent.
                wire = supervisor.wire_snapshot()
                assert wire.messages_sent >= 1
                assert wire.flushes >= 1
                assert wire.flushes <= wire.messages_sent
            finally:
                supervisor.close()
        finally:
            shut_down_listener(address, thread)

    def test_true_v1_era_peer_still_serves(self):
        # A peer built before negotiation existed: its hello carries no
        # max_protocol field at all. Emulate one faithfully by speaking raw
        # v1 JSON at a v2 listener.
        address, thread = start_listener()
        try:
            sock = socket.create_connection(address, timeout=5)
            connection = protocol.StreamConnection(sock)
            try:
                hello = protocol.encode_message(
                    protocol.HelloCall(
                        request_id=1,
                        protocol_version=protocol.PROTOCOL_VERSION,
                        shard_id=0,
                        trust=protocol.TRUST_SOURCE,
                    )
                )
                envelope = json.loads(hello.decode("utf-8"))
                del envelope["payload"]["max_protocol"]
                connection.send_bytes(json.dumps(envelope).encode("utf-8"))
                reply = protocol.decode_message(connection.recv_bytes())
                assert isinstance(reply, protocol.HelloReply)

                connection.send_bytes(
                    protocol.encode_message(
                        protocol.ServeCall(
                            request_id=2,
                            request=ServeRequest(kind="ntt", bits=64, size=SIZE),
                        )
                    )
                )
                data = connection.recv_bytes()
                # The reply must be v1 JSON — a binary frame would be
                # unreadable to this peer.
                assert data[: len(protocol.FRAME_MAGIC)] != protocol.FRAME_MAGIC
                served = json.loads(data.decode("utf-8"))  # parses as JSON
                assert served["payload"]["request_id"] == 2
                decoded = protocol.decode_message(data)
                assert isinstance(decoded.result.artifact, str)
            finally:
                connection.close()
        finally:
            shut_down_listener(address, thread)


class TestMixedRing:
    def test_local_and_remote_shards_share_one_ring(self):
        address, thread = start_listener(shard_id=0)
        supervisor = ShardSupervisor(
            shards=1,  # one spawned local shard...
            devices=("rtx4090",),
            connect=(address,),  # ...plus one remote: ring ids 0 (local), 1 (remote)
            workers=2,
        )
        try:
            for request in FAMILY_MIX:
                assert supervisor.serve(request).request == request
            routed = supervisor.routed_counts()
            assert set(routed) == {0, 1}, f"all traffic landed on {set(routed)}"
            pongs = supervisor.ping()
            assert set(pongs) == {0, 1}
            # The local pipe stays fully trusted even while the TCP shard
            # runs source-only: artifact types differ by transport.
            stats = supervisor.stats()
            assert len(stats.shards) == 2
        finally:
            supervisor.close()
            shut_down_listener(address, thread)
