"""Warmup: recorded winners are compiled before traffic arrives."""

import dataclasses

import pytest

from repro.errors import ServingError
from repro.serve import KernelServer, ServeRequest, request_from_record, warm_server
from repro.tune import TuningDatabase

BITS = 128
SIZE = 16


def _populate(db_path, requests):
    """Tune the given families once, persisting winners to ``db_path``."""
    with KernelServer(db=TuningDatabase(db_path), devices=("rtx4090",)) as server:
        for request in requests:
            server.serve(request)


class TestWarmServer:
    def test_first_request_after_warmup_is_warm(self, tmp_path):
        """Acceptance: warmup populates the cache; request one is a hit."""
        path = tmp_path / "db.json"
        request = ServeRequest(kind="ntt", bits=BITS, size=SIZE)
        _populate(path, [request])

        with KernelServer(db=TuningDatabase(path), devices=("rtx4090",)) as server:
            report = warm_server(server)
            assert report.warmed == 1
            assert report.stale == 0
            assert report.errors == 0

            compilations_before = server.session.stats().compilations
            db_before = server.db.stats()
            result = server.serve(request)
            assert result.warm
            assert result.from_database  # tuned by lookup during warmup
            assert server.session.stats().compilations == compilations_before
            db_after = server.db.stats()
            assert (db_after.hits, db_after.misses) == (db_before.hits, db_before.misses)

    def test_warmup_covers_blas_and_ntt(self, tmp_path):
        path = tmp_path / "db.json"
        requests = [
            ServeRequest(kind="ntt", bits=BITS, size=SIZE),
            ServeRequest(kind="blas", bits=BITS, operation="vadd"),
        ]
        _populate(path, requests)

        with KernelServer(db=TuningDatabase(path), devices=("rtx4090",)) as server:
            report = server.warm()
            assert report.warmed == 2
            assert server.resident_count == 2
            assert all(server.serve(request).warm for request in requests)

    def test_other_device_records_are_skipped(self, tmp_path):
        path = tmp_path / "db.json"
        _populate(path, [ServeRequest(kind="ntt", bits=BITS, size=SIZE, device="h100")])

        with KernelServer(db=TuningDatabase(path), devices=("rtx4090",)) as server:
            report = warm_server(server)
            assert report.warmed == 0
            assert report.skipped_other_device == 1
            assert server.resident_count == 0

    def test_stale_version_records_are_reported_not_served(self, tmp_path):
        path = tmp_path / "db.json"
        _populate(path, [ServeRequest(kind="ntt", bits=BITS, size=SIZE)])
        db = TuningDatabase(path)
        [(key, record)] = db.records().items()
        db.remove(key)
        db.store(dataclasses.replace(record, tuner_version=0))

        with KernelServer(db=TuningDatabase(path), devices=("rtx4090",)) as server:
            report = warm_server(server)
            assert report.warmed == 0
            assert report.stale == 1
            assert [entry.status for entry in report.entries] == ["stale-version"]

    def test_stale_fingerprint_records_are_reported_not_served(self, tmp_path):
        path = tmp_path / "db.json"
        _populate(path, [ServeRequest(kind="ntt", bits=BITS, size=SIZE)])
        db = TuningDatabase(path)
        [(key, record)] = db.records().items()
        db.remove(key)
        db.store(dataclasses.replace(record, fingerprint="0" * 16))

        with KernelServer(db=TuningDatabase(path), devices=("rtx4090",)) as server:
            report = warm_server(server)
            assert report.warmed == 0
            assert report.stale == 1
            assert [entry.status for entry in report.entries] == ["stale-fingerprint"]


class TestRecordParsing:
    def test_round_trip_ntt_and_blas(self, tmp_path):
        path = tmp_path / "db.json"
        requests = [
            ServeRequest(kind="ntt", bits=BITS, size=SIZE),
            ServeRequest(kind="blas", bits=BITS, operation="axpy", elements=4096),
        ]
        _populate(path, requests)
        records = TuningDatabase(path).records()
        rebuilt = {
            request_from_record(record).workload().key for record in records.values()
        }
        assert rebuilt == {request.workload().key for request in requests}

    def test_unparsable_workload_key_raises(self, tmp_path):
        path = tmp_path / "db.json"
        _populate(path, [ServeRequest(kind="ntt", bits=BITS, size=SIZE)])
        [record] = TuningDatabase(path).records().values()
        broken = dataclasses.replace(record, workload_key="fft/strange/x1")
        with pytest.raises(ServingError):
            request_from_record(broken)
