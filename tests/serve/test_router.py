"""ShardRouter properties: determinism, spread, minimal movement on loss.

Consistent hashing earns its keep on two properties, both tested here
against many synthetic family keys:

* **determinism** — any two routers over the same shard ids agree on every
  key, across instances and processes (the ring is pure hashing, no state);
* **minimal movement** — removing a shard remaps *only* the keys that lived
  on it; every other key keeps its shard (and its warm resident table).
"""

import pytest

from repro.errors import ServingError
from repro.serve import ServeRequest
from repro.serve.shard import ShardRouter

#: Synthetic routing keys standing in for (fingerprint, device) pairs.
KEYS = [f"family-{index:04x}::rtx4090" for index in range(512)]


class TestDeterminism:
    def test_identical_routers_agree_on_every_key(self):
        first = ShardRouter(range(4))
        second = ShardRouter(range(4))
        assert [first.route_key(key) for key in KEYS] == [
            second.route_key(key) for key in KEYS
        ]

    def test_repeated_routing_is_stable(self):
        router = ShardRouter(range(3))
        expected = {key: router.route_key(key) for key in KEYS}
        for _ in range(3):
            assert {key: router.route_key(key) for key in KEYS} == expected

    def test_request_routing_is_deterministic_and_device_aware(self):
        first = ShardRouter(range(4))
        second = ShardRouter(range(4))
        request = ServeRequest(kind="ntt", bits=128, size=16)
        assert first.route(request) == second.route(request)
        # The routing key is (family fingerprint, device): the same family
        # on another device is an independent key (it may or may not land
        # elsewhere, but it must be stable).
        other_device = ServeRequest(kind="ntt", bits=128, size=16, device="h100")
        assert first.route(other_device) == second.route(other_device)

    def test_fingerprint_memoized_per_workload(self):
        router = ShardRouter(range(2))
        request = ServeRequest(kind="ntt", bits=128, size=16)
        fingerprint = router.fingerprint_of(request)
        assert fingerprint == request.workload().fingerprint()
        assert router.fingerprint_of(request) == fingerprint
        assert len(router._fingerprints) == 1


class TestSpread:
    def test_every_shard_owns_traffic(self):
        router = ShardRouter(range(4))
        owners = {router.route_key(key) for key in KEYS}
        assert owners == {0, 1, 2, 3}

    def test_no_shard_hogs_the_ring(self):
        router = ShardRouter(range(4))
        counts = {shard_id: 0 for shard_id in range(4)}
        for key in KEYS:
            counts[router.route_key(key)] += 1
        # With 64 virtual nodes per shard the split is rough but never
        # degenerate: no shard should own more than half of 512 keys.
        assert max(counts.values()) < len(KEYS) / 2


class TestRebalance:
    def test_shard_loss_moves_only_its_keys(self):
        router = ShardRouter(range(4))
        before = {key: router.route_key(key) for key in KEYS}
        router.remove_shard(2)
        after = {key: router.route_key(key) for key in KEYS}
        for key in KEYS:
            if before[key] != 2:
                assert after[key] == before[key]  # survivors keep their keys
            else:
                assert after[key] != 2  # lost keys land elsewhere

    def test_excluding_equals_removal(self):
        router = ShardRouter(range(4))
        removed = ShardRouter(range(4))
        removed.remove_shard(1)
        assert [router.route_key(key, excluding={1}) for key in KEYS] == [
            removed.route_key(key) for key in KEYS
        ]

    def test_rejoin_restores_the_original_mapping(self):
        router = ShardRouter(range(4))
        before = {key: router.route_key(key) for key in KEYS}
        router.remove_shard(3)
        router.add_shard(3)
        assert {key: router.route_key(key) for key in KEYS} == before

    def test_all_shards_excluded_raises(self):
        router = ShardRouter(range(2))
        with pytest.raises(ServingError, match="no live shard"):
            router.route_key(KEYS[0], excluding={0, 1})

    def test_membership_queries(self):
        router = ShardRouter(range(3))
        assert router.shard_ids == (0, 1, 2)
        router.remove_shard(0)
        assert router.shard_ids == (1, 2)


class TestValidation:
    def test_empty_router_rejected(self):
        with pytest.raises(ServingError, match="at least one shard"):
            ShardRouter(())

    def test_bad_virtual_node_count_rejected(self):
        with pytest.raises(ServingError, match="virtual node count"):
            ShardRouter(range(2), virtual_nodes=0)
