"""Wire-protocol round trips: every message type, framing, version gates.

The property under test is that a message survives the wire *exactly* —
including a pickled executable kernel artifact that must compute the same
results after crossing — and that every malformed input (wrong version,
unknown type, truncated frame, untrusted pickle) is rejected with
:class:`ProtocolError`, never half-decoded.
"""

import dataclasses
import io
import json
import random
import socket
import threading
import time

import pytest

from repro.errors import ProtocolError, ServingError, TuningError
from repro.core.codegen.python_exec import CompiledKernel
from repro.serve import KernelServer, ServeRequest
from repro.serve import protocol

BITS = 128
SIZE = 16


@pytest.fixture(scope="module")
def served():
    """One cold-served result (executable artifact + tuning provenance)."""
    with KernelServer(devices=("rtx4090",)) as server:
        yield server.serve(ServeRequest(kind="ntt", bits=BITS, size=SIZE))


def round_trip(message, allow_pickled=False):
    return protocol.decode_message(
        protocol.encode_message(message), allow_pickled=allow_pickled
    )


class TestMessageRoundTrips:
    def test_serve_call(self):
        message = protocol.ServeCall(
            request_id=7, request=ServeRequest(kind="blas", bits=256, operation="vmul")
        )
        assert round_trip(message) == message

    def test_serve_reply_with_pickled_kernel(self, served):
        message = protocol.ServeReply(request_id=9, result=served)
        decoded = round_trip(message, allow_pickled=True)
        assert decoded.request_id == 9
        result = decoded.result
        assert result.request == served.request
        assert result.config == served.config
        assert result.fingerprint == served.fingerprint
        assert result.cache_key == served.cache_key
        assert result.warm == served.warm
        # The tuning provenance crosses (minus the trial list, by design).
        assert result.tuning.candidate == served.tuning.candidate
        assert result.tuning.workload == served.tuning.workload
        assert result.tuning.trials == ()
        # The executable artifact computes identically after the wire.
        assert isinstance(result.artifact, CompiledKernel)
        limbs = tuple(range(len(served.artifact.kernel.params)))
        assert result.artifact.call_limbs(*limbs) == served.artifact.call_limbs(*limbs)

    def test_serve_reply_with_source_artifact(self, served):
        source_result = dataclasses.replace(
            served, request=dataclasses.replace(served.request, target="cuda"),
            artifact="__global__ void k() {}",
        )
        decoded = round_trip(
            protocol.ServeReply(request_id=1, result=source_result)
        )
        assert decoded.result.artifact == "__global__ void k() {}"

    def test_error_reply_rebuilds_repro_errors(self):
        message = protocol.ErrorReply.from_exception(3, TuningError("bad workload"))
        decoded = round_trip(message)
        assert decoded == message
        error = decoded.exception()
        assert isinstance(error, TuningError)
        assert "bad workload" in str(error)

    def test_error_reply_degrades_unknown_types_to_serving_error(self):
        decoded = round_trip(protocol.ErrorReply.from_exception(3, TypeError("boom")))
        error = decoded.exception()
        assert isinstance(error, ServingError)
        assert "TypeError" in str(error)

    def test_stats_round_trip(self):
        stats = protocol.ShardStats(
            shard_id=1,
            pid=1234,
            requests=10,
            warm_serves=6,
            cold_serves=3,
            dedup_hits=1,
            errors=0,
            tune_batches=2,
            batched_tunes=3,
            queue_depth=0,
            resident_kernels=3,
            warm_histogram=(0, 4, 2, 0),
            cold_histogram=(0, 0, 1, 2),
        )
        message = protocol.StatsReply(request_id=11, stats=stats)
        assert round_trip(message) == message

    @pytest.mark.parametrize(
        "message",
        [
            protocol.StatsCall(request_id=2),
            protocol.PingCall(request_id=4),
            protocol.PongReply(request_id=4, shard_id=0, pid=77),
            protocol.ShutdownCall(request_id=5),
        ],
    )
    def test_simple_messages(self, message):
        assert round_trip(message) == message


class TestArtifactEncoding:
    def test_pickled_kernel_requires_trust(self, served):
        payload = protocol.encode_artifact(served.artifact)
        assert payload["encoding"] == "pickled_kernel"
        with pytest.raises(ProtocolError, match="untrusted"):
            protocol.decode_artifact(payload)  # allow_pickled defaults to False

    def test_source_passes_untrusted(self):
        payload = protocol.encode_artifact("void k();")
        assert protocol.decode_artifact(payload) == "void k();"

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ProtocolError, match="unknown artifact encoding"):
            protocol.decode_artifact({"encoding": "dll", "data": ""}, allow_pickled=True)

    def test_unencodable_artifact_rejected(self):
        with pytest.raises(ProtocolError, match="cannot encode"):
            protocol.encode_artifact(object())

    def test_corrupt_pickle_rejected(self):
        payload = {"encoding": "pickled_kernel", "data": "not base64 pickle!"}
        with pytest.raises(ProtocolError, match="corrupt"):
            protocol.decode_artifact(payload, allow_pickled=True)


class TestVersionAndShape:
    def test_unknown_version_rejected(self):
        data = protocol.encode_message(protocol.PingCall(request_id=1))
        envelope = json.loads(data)
        envelope["moma-serve"] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="unsupported protocol version"):
            protocol.decode_message(json.dumps(envelope).encode())

    def test_unknown_message_type_rejected(self):
        envelope = {"moma-serve": protocol.PROTOCOL_VERSION, "type": "warp", "payload": {}}
        with pytest.raises(ProtocolError, match="unknown message type"):
            protocol.decode_message(json.dumps(envelope).encode())

    def test_non_json_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            protocol.decode_message(b"\x00\x01binary")

    def test_foreign_envelope_rejected(self):
        with pytest.raises(ProtocolError, match="not a moma-serve envelope"):
            protocol.decode_message(json.dumps({"jsonrpc": "2.0"}).encode())

    def test_missing_request_id_rejected(self):
        envelope = {
            "moma-serve": protocol.PROTOCOL_VERSION,
            "type": "ping",
            "payload": {},
        }
        with pytest.raises(ProtocolError, match="request_id"):
            protocol.decode_message(json.dumps(envelope).encode())

    def test_unknown_payload_keys_are_ignored(self):
        # Additive optional fields may ride within a protocol version.
        envelope = {
            "moma-serve": protocol.PROTOCOL_VERSION,
            "type": "ping",
            "payload": {"request_id": 8, "future_field": True},
        }
        decoded = protocol.decode_message(json.dumps(envelope).encode())
        assert decoded == protocol.PingCall(request_id=8)


class TestFraming:
    def test_stream_round_trip_preserves_order(self):
        stream = io.BytesIO()
        messages = [
            protocol.PingCall(request_id=1),
            protocol.StatsCall(request_id=2),
            protocol.ShutdownCall(request_id=3),
        ]
        for message in messages:
            protocol.write_message(stream, message)
        stream.seek(0)
        assert [protocol.read_message(stream) for _ in messages] == messages
        assert protocol.read_message(stream) is None  # clean EOF

    def test_truncated_frame_rejected(self):
        stream = io.BytesIO()
        protocol.write_message(stream, protocol.PingCall(request_id=1))
        data = stream.getvalue()
        with pytest.raises(ProtocolError, match="truncated"):
            protocol.read_message(io.BytesIO(data[:-3]))

    def test_short_length_prefix_rejected(self):
        with pytest.raises(ProtocolError, match="short length prefix"):
            protocol.read_message(io.BytesIO(b"\x00\x01"))

    def test_implausible_length_rejected(self):
        prefix = (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="implausible"):
            protocol.read_message(io.BytesIO(prefix + b"x"))


class TestHandshakeMessages:
    def test_hello_round_trip(self):
        message = protocol.HelloCall(
            request_id=1,
            protocol_version=protocol.PROTOCOL_VERSION,
            shard_id=3,
            trust=protocol.TRUST_SOURCE,
        )
        assert round_trip(message) == message

    def test_hello_reply_round_trip(self):
        message = protocol.HelloReply(
            request_id=1,
            shard_id=3,
            pid=4242,
            protocol_version=protocol.PROTOCOL_VERSION,
            trust=protocol.TRUST_PICKLED,
        )
        assert round_trip(message) == message

    def test_unknown_trust_level_rejected(self):
        message = protocol.HelloCall(
            request_id=1,
            protocol_version=protocol.PROTOCOL_VERSION,
            shard_id=0,
            trust="blindly",
        )
        with pytest.raises(ProtocolError, match="trust level"):
            round_trip(message)

    def test_negotiate_trust_grants_the_weaker_side(self):
        pickled, source = protocol.TRUST_PICKLED, protocol.TRUST_SOURCE
        assert protocol.negotiate_trust(pickled, pickled) == pickled
        assert protocol.negotiate_trust(pickled, source) == source
        assert protocol.negotiate_trust(source, pickled) == source
        assert protocol.negotiate_trust(source, source) == source

    def test_negotiate_trust_rejects_unknown_levels(self):
        with pytest.raises(ProtocolError, match="trust level"):
            protocol.negotiate_trust("root", protocol.TRUST_SOURCE)

    def test_source_only_result_downgrades_kernels(self, served):
        downgraded = protocol.source_only_result(served)
        assert downgraded.artifact == served.artifact.source
        assert downgraded.request == served.request
        # Source-text artifacts pass through untouched.
        assert protocol.source_only_result(downgraded) is downgraded


class TestSocketFuzz:
    """Malformed frames over a real socketpair must always fail cleanly.

    Every outcome of feeding truncated / oversized / garbage bytes into
    :func:`protocol.read_message` must be a :class:`ProtocolError` (or a
    clean-EOF ``None``) — never a hang, an ``OverflowError``, or a
    ``MemoryError`` from trusting a corrupt length prefix.  The reader side
    uses an *unbuffered* socket file, so ``stream.read(n)`` legally returns
    short — exactly the case the ``_read_exact`` loop exists for.
    """

    @staticmethod
    def feed(payload: bytes):
        """Deliver ``payload`` then EOF; return/raise read_message's outcome."""
        writer, reader_sock = socket.socketpair()
        with writer, reader_sock:
            reader_sock.settimeout(30.0)  # a hang fails loudly, not forever
            reader = reader_sock.makefile("rb", buffering=0)
            if payload:
                writer.sendall(payload)
            writer.shutdown(socket.SHUT_WR)
            return protocol.read_message(reader)

    def test_empty_stream_is_clean_eof(self):
        assert self.feed(b"") is None

    def test_every_truncation_of_a_valid_frame_is_rejected(self):
        stream = io.BytesIO()
        protocol.write_message(stream, protocol.PingCall(request_id=9))
        frame = stream.getvalue()
        for cut in range(1, len(frame)):
            with pytest.raises(ProtocolError):
                self.feed(frame[:cut])

    def test_oversized_length_prefix_never_allocates(self):
        for length in (protocol.MAX_FRAME_BYTES + 1, 0xFFFFFFFF):
            with pytest.raises(ProtocolError, match="implausible"):
                self.feed(length.to_bytes(4, "big") + b"tiny")

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError, match="implausible"):
            self.feed(b"\x00\x00\x00\x00")

    def test_max_length_prefix_with_short_body_is_truncation(self):
        # A plausible (in-bounds) length the peer never finishes writing.
        prefix = (1 << 20).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="truncated"):
            self.feed(prefix + b"only this much arrived")

    def test_garbage_bytes_never_escape_protocol_error(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(64):
            payload = rng.randbytes(rng.randrange(1, 64))
            try:
                self.feed(payload)
            except ProtocolError:
                pass  # the only acceptable exception

    def test_valid_frame_survives_dribbled_delivery(self):
        # One byte at a time across the socket: _read_exact must reassemble.
        stream = io.BytesIO()
        protocol.write_message(stream, protocol.StatsCall(request_id=5))
        frame = stream.getvalue()
        writer, reader_sock = socket.socketpair()
        with writer, reader_sock:
            reader_sock.settimeout(30.0)
            reader = reader_sock.makefile("rb", buffering=0)

            def dribble():
                for index in range(len(frame)):
                    writer.sendall(frame[index : index + 1])
                    time.sleep(0.001)
                writer.shutdown(socket.SHUT_WR)

            feeder = threading.Thread(target=dribble, daemon=True)
            feeder.start()
            assert protocol.read_message(reader) == protocol.StatsCall(request_id=5)
            feeder.join(timeout=10)
