"""Tenant identity, key namespacing, and admission quotas.

The shared helpers every layer leans on: `validate_tenant` is the single
gatekeeper for ids that become key segments and file-name fragments,
`qualify_key` pins the default-namespace-is-legacy-format invariant, and
`TenantRegistry` is the supervisor's admission control.
"""

import pytest

from repro.errors import QuotaExceededError
from repro.tenancy import (
    DEFAULT_TENANT,
    TenantConfig,
    TenantRegistry,
    qualify_key,
    split_tenant,
    validate_tenant,
)

#: Ids that would corrupt a ``::``-joined key, a file name, or a report.
BAD_TENANTS = ["", "a::b", "a/b", "a\\b", "a b", "a\tb", "a\n", " "]


class TestValidateTenant:
    @pytest.mark.parametrize("tenant", ["a", "acme", "default", "T-1", "x.y_z"])
    def test_accepts_reasonable_ids(self, tenant):
        assert validate_tenant(tenant) == tenant

    @pytest.mark.parametrize("tenant", BAD_TENANTS)
    def test_rejects_corrupting_ids(self, tenant):
        with pytest.raises(ValueError):
            validate_tenant(tenant)

    @pytest.mark.parametrize("tenant", [None, 7, b"acme", ["a"]])
    def test_rejects_non_strings(self, tenant):
        with pytest.raises(ValueError):
            validate_tenant(tenant)


class TestQualifyKey:
    def test_default_namespace_is_the_bare_key(self):
        """The invariant everything else rests on: no prefix for default."""
        assert qualify_key(DEFAULT_TENANT, "ntt/x::dev") == "ntt/x::dev"

    def test_non_default_tenant_prefixes(self):
        assert qualify_key("acme", "ntt/x::dev") == "acme::ntt/x::dev"

    def test_invalid_tenant_raises(self):
        with pytest.raises(ValueError):
            qualify_key("a::b", "key")

    def test_split_round_trips_serve_style_keys(self):
        bare = "ntt/cooley_tukey/n16/128b::m124::rtx4090::python_exec::tuned"
        assert split_tenant(qualify_key("acme", bare)) == ("acme", bare)
        # A bare serve key starts with the workload family, whose '/'
        # segments can never validate as a tenant id — no false split.
        assert split_tenant(bare) == (DEFAULT_TENANT, bare)

    def test_split_with_known_tenants_disambiguates(self):
        assert split_tenant("acme::rest", known_tenants=("acme",)) == (
            "acme",
            "rest",
        )
        assert split_tenant("fingerprint::rest", known_tenants=("acme",)) == (
            DEFAULT_TENANT,
            "fingerprint::rest",
        )


class TestTenantConfig:
    def test_validates_its_tenant_and_limits(self):
        with pytest.raises(ValueError):
            TenantConfig(tenant="a::b")
        with pytest.raises(ValueError):
            TenantConfig(tenant="a", rate_rps=0)
        with pytest.raises(ValueError):
            TenantConfig(tenant="a", max_in_flight=0)

    def test_label_prefers_display_name(self):
        assert TenantConfig(tenant="a").label == "a"
        assert TenantConfig(tenant="a", display_name="Acme Corp").label == (
            "Acme Corp"
        )


class TestTenantRegistry:
    def test_unregistered_tenants_are_unlimited(self):
        registry = TenantRegistry()
        for _ in range(100):
            registry.admit("anyone")
        assert registry.in_flight("anyone") == 100
        assert registry.rejected("anyone") == 0

    def test_in_flight_cap_rejects_and_release_frees(self):
        registry = TenantRegistry((TenantConfig(tenant="a", max_in_flight=2),))
        registry.admit("a")
        registry.admit("a")
        with pytest.raises(QuotaExceededError):
            registry.admit("a")
        assert registry.rejected("a") == 1
        registry.release("a")
        registry.admit("a")  # freed slot admits again
        assert registry.in_flight("a") == 2

    def test_rate_window_rejects_then_slides(self):
        registry = TenantRegistry((TenantConfig(tenant="a", rate_rps=2),))
        registry.admit("a", now=100.0)
        registry.admit("a", now=100.1)
        with pytest.raises(QuotaExceededError):
            registry.admit("a", now=100.2)
        # 1.5 s later the window has slid past both earlier admissions.
        registry.admit("a", now=101.6)
        assert registry.rejected("a") == 1

    def test_one_tenant_over_quota_never_blocks_another(self):
        registry = TenantRegistry((TenantConfig(tenant="a", max_in_flight=1),))
        registry.admit("a")
        with pytest.raises(QuotaExceededError):
            registry.admit("a")
        registry.admit("b")  # unconfigured tenant is untouched
        assert registry.in_flight("b") == 1

    def test_snapshot_reports_state_and_limits(self):
        registry = TenantRegistry(
            (TenantConfig(tenant="a", rate_rps=10, max_in_flight=1),)
        )
        registry.admit("a")
        with pytest.raises(QuotaExceededError):
            registry.admit("a")
        registry.admit("b")
        snapshot = registry.snapshot()
        assert snapshot["a"] == {
            "in_flight": 1,
            "rejected": 1,
            "rate_rps": 10,
            "max_in_flight": 1,
        }
        assert snapshot["b"] == {"in_flight": 1, "rejected": 0}
