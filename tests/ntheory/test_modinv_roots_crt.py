"""Tests for modular inverses, roots of unity and CRT reconstruction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ArithmeticDomainError
from repro.ntheory.crt import check_pairwise_coprime, crt_reconstruct, garner_reconstruct
from repro.ntheory.modinv import modexp, modinv, xgcd
from repro.ntheory.primes import find_ntt_prime
from repro.ntheory.roots import (
    factorize,
    find_generator,
    inverse_root,
    is_primitive_root_of_unity,
    primitive_root_of_unity,
)


class TestXgcd:
    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
    def test_bezout_identity(self, a, b):
        g, x, y = xgcd(a, b)
        assert a * x + b * y == g


class TestModinv:
    @given(st.integers(min_value=1, max_value=10**6))
    def test_inverse_property(self, value):
        p = 2**61 - 1
        inv = modinv(value, p)
        assert (value * inv) % p == 1

    def test_no_inverse(self):
        with pytest.raises(ArithmeticDomainError):
            modinv(6, 12)

    def test_bad_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            modinv(3, 1)


class TestModexp:
    def test_negative_exponent(self):
        p = 97
        assert modexp(5, -1, p) == modinv(5, p)
        assert (modexp(5, -3, p) * pow(5, 3, p)) % p == 1

    def test_positive_matches_pow(self):
        assert modexp(7, 20, 101) == pow(7, 20, 101)

    def test_bad_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            modexp(2, 3, 0)


class TestFactorize:
    @given(st.integers(min_value=1, max_value=10**6))
    def test_product_of_factors(self, value):
        factors = factorize(value)
        product = 1
        for prime, exponent in factors.items():
            product *= prime**exponent
        assert product == value

    def test_large_smooth_number(self):
        p = find_ntt_prime(60, 4096)
        factors = factorize(p - 1)
        product = 1
        for prime, exponent in factors.items():
            product *= prime**exponent
        assert product == p - 1

    def test_rejects_non_positive(self):
        with pytest.raises(ArithmeticDomainError):
            factorize(0)


class TestRootsOfUnity:
    def test_generator_order(self):
        p = 97
        g = find_generator(p)
        seen = {pow(g, k, p) for k in range(p - 1)}
        assert len(seen) == p - 1

    def test_generator_rejects_composite(self):
        with pytest.raises(ArithmeticDomainError):
            find_generator(100)

    @pytest.mark.parametrize("bits,size", [(28, 64), (60, 256), (60, 4096)])
    def test_primitive_root_properties(self, bits, size):
        p = find_ntt_prime(bits, size)
        omega = primitive_root_of_unity(size, p)
        assert pow(omega, size, p) == 1
        assert pow(omega, size // 2, p) == p - 1  # omega^(n/2) = -1 for even n
        assert is_primitive_root_of_unity(omega, size, p)

    def test_root_of_wrong_order_detected(self):
        p = find_ntt_prime(28, 64)
        omega = primitive_root_of_unity(64, p)
        assert not is_primitive_root_of_unity(pow(omega, 2, p), 64, p)

    def test_no_root_when_order_does_not_divide(self):
        with pytest.raises(ArithmeticDomainError):
            primitive_root_of_unity(3, 257)  # 3 does not divide 256

    def test_inverse_root(self):
        p = find_ntt_prime(60, 256)
        omega = primitive_root_of_unity(256, p)
        assert (omega * inverse_root(omega, p)) % p == 1


class TestCRT:
    MODULI = [(1 << 61) - 1, (1 << 31) - 1, 2**13 - 1, 97]

    def test_pairwise_coprime_check(self):
        check_pairwise_coprime(self.MODULI)
        with pytest.raises(ArithmeticDomainError):
            check_pairwise_coprime([6, 10])
        with pytest.raises(ArithmeticDomainError):
            check_pairwise_coprime([1, 3])

    @settings(max_examples=100)
    @given(st.integers(min_value=0))
    def test_reconstruction_round_trip(self, value):
        product = 1
        for m in self.MODULI:
            product *= m
        value %= product
        residues = [value % m for m in self.MODULI]
        assert crt_reconstruct(residues, self.MODULI) == value
        assert garner_reconstruct(residues, self.MODULI) == value

    def test_mismatched_lengths(self):
        with pytest.raises(ArithmeticDomainError):
            crt_reconstruct([1], [3, 5])
        with pytest.raises(ArithmeticDomainError):
            garner_reconstruct([1], [3, 5])

    def test_unreduced_residue_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            crt_reconstruct([5], [3])
        with pytest.raises(ArithmeticDomainError):
            garner_reconstruct([5], [3])

    def test_empty_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            crt_reconstruct([], [])
