"""Tests for primality testing and NTT-friendly prime generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ArithmeticDomainError
from repro.ntheory.primes import (
    find_ntt_prime,
    find_prime_with_bits,
    is_prime,
    next_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 61, 97, 101, 2**13 - 1, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 561, 1105, 6601, 2**32 - 1, 2**61 + 1, 2**67 - 1]
# Carmichael numbers (strong pseudoprime traps).
CARMICHAELS = [561, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841, 29341]


class TestIsPrime:
    @pytest.mark.parametrize("value", KNOWN_PRIMES)
    def test_known_primes(self, value):
        assert is_prime(value)

    @pytest.mark.parametrize("value", KNOWN_COMPOSITES)
    def test_known_composites(self, value):
        assert not is_prime(value)

    @pytest.mark.parametrize("value", CARMICHAELS)
    def test_carmichael_numbers(self, value):
        assert not is_prime(value)

    def test_negative(self):
        assert not is_prime(-7)

    @given(st.integers(min_value=2, max_value=10_000))
    def test_matches_trial_division(self, value):
        by_trial = all(value % d for d in range(2, int(value**0.5) + 1)) and value >= 2
        assert is_prime(value) == by_trial

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime; exercises the wide-input path.
        assert is_prime((1 << 127) - 1)

    def test_large_composite(self):
        assert not is_prime((1 << 127) - 3)


class TestNextPrime:
    def test_small(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(3) == 5
        assert next_prime(13) == 17

    @given(st.integers(min_value=2, max_value=100_000))
    def test_result_is_prime_and_greater(self, start):
        p = next_prime(start)
        assert p > start
        assert is_prime(p)


class TestFindPrimeWithBits:
    @pytest.mark.parametrize("bits", [8, 16, 32, 60, 124])
    def test_exact_bit_length(self, bits):
        p = find_prime_with_bits(bits)
        assert p.bit_length() == bits
        assert is_prime(p)

    def test_different_seeds_give_different_primes(self):
        assert find_prime_with_bits(60, seed=0) != find_prime_with_bits(60, seed=50)

    def test_rejects_tiny(self):
        with pytest.raises(ArithmeticDomainError):
            find_prime_with_bits(1)


class TestFindNttPrime:
    @pytest.mark.parametrize("bits,size", [(28, 256), (60, 1024), (60, 4096), (124, 256)])
    def test_congruence_and_bit_length(self, bits, size):
        p = find_ntt_prime(bits, size)
        assert p.bit_length() == bits
        assert is_prime(p)
        assert (p - 1) % (2 * size) == 0

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ArithmeticDomainError):
            find_ntt_prime(60, 1000)

    def test_rejects_size_too_large_for_bits(self):
        with pytest.raises(ArithmeticDomainError):
            find_ntt_prime(8, 1 << 20)

    def test_rejects_tiny_bits(self):
        with pytest.raises(ArithmeticDomainError):
            find_ntt_prime(2, 4)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=3))
    def test_seed_determinism(self, seed):
        assert find_ntt_prime(60, 256, seed) == find_ntt_prime(60, 256, seed)
