"""The tracing core: sampling, propagation, wire adoption, and the ring.

The contracts that keep tracing safe to leave compiled into the serving
hot path: an unsampled request costs one context-variable read and builds
no objects; sampling is deterministic 1-in-N; a trace crosses threads via
``contextvars`` and processes via the envelope's ``trace`` field (adopted
spans join the sender's trace under the sender's span); provisional
exemplar traces commit only when the root ends up slow — and never
propagate; the span ring is bounded, counts what it drops, and a trace's
scratch is hard-capped so runaway instrumentation cannot grow it.
"""

import contextvars
import threading
import time

import pytest

from repro.obs.trace import (
    MAX_SPANS_PER_TRACE,
    Span,
    SpanBuffer,
    Tracer,
    current,
    current_trace_id,
    record,
    span,
)


class TestSampling:
    def test_rate_zero_never_traces(self):
        tracer = Tracer(sample_rate=0.0)
        assert all(tracer.begin("r") is None for _ in range(50))

    def test_rate_one_always_traces(self):
        tracer = Tracer(sample_rate=1.0)
        for _ in range(10):
            handle = tracer.begin("r")
            assert handle is not None
            handle.finish()
        assert tracer.committed_traces == 10

    def test_one_percent_is_deterministic_every_hundredth(self):
        tracer = Tracer(sample_rate=0.01)
        decisions = [tracer.begin("r") is not None for _ in range(300)]
        assert decisions[0] and decisions[100] and decisions[200]
        assert sum(decisions) == 3

    def test_force_overrides_the_sampler(self):
        tracer = Tracer(sample_rate=0.0)
        handle = tracer.begin("r", force=True)
        assert handle is not None and handle.sampled

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="sample rate"):
            Tracer(sample_rate=1.5)


class TestUntracedFastPath:
    def test_no_context_by_default(self):
        assert current() is None
        assert current_trace_id() is None

    def test_span_and_record_are_noops_without_a_trace(self):
        with span("anything") as context:
            assert context is None
        record("anything", time.time(), 0.001)  # must not raise


class TestSpanNesting:
    def test_children_nest_under_the_active_span(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.trace("root") as handle:
            with span("outer") as outer:
                with span("inner"):
                    pass
        spans = {one.name: one for one in tracer.drain()}
        assert set(spans) == {"root", "outer", "inner"}
        assert spans["root"].parent_id == ""
        assert spans["outer"].parent_id == spans["root"].span_id
        assert spans["inner"].parent_id == outer.span_id
        assert len({one.trace_id for one in spans.values()}) == 1
        assert handle.trace_id == spans["root"].trace_id

    def test_context_resets_after_the_trace_block(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.trace("root"):
            assert current_trace_id() is not None
        assert current_trace_id() is None

    def test_record_appends_a_measured_child(self):
        tracer = Tracer(sample_rate=1.0)
        wall = time.time() - 0.5
        with tracer.trace("root"):
            record("queued", wall, 0.25, cat="serve", depth=3)
        queued = next(one for one in tracer.drain() if one.name == "queued")
        assert queued.ts_us == pytest.approx(wall * 1e6)
        assert queued.dur_us == pytest.approx(0.25e6)
        assert queued.args == {"depth": 3}


class TestThreadPropagation:
    def test_copied_context_carries_the_trace_into_a_worker(self):
        tracer = Tracer(sample_rate=1.0)
        seen = []

        def worker():
            with span("worker.step"):
                seen.append(current_trace_id())

        with tracer.trace("root") as handle:
            context = contextvars.copy_context()
            thread = threading.Thread(target=context.run, args=(worker,))
            thread.start()
            thread.join()
        assert seen == [handle.trace_id]
        assert "worker.step" in {one.name for one in tracer.drain()}

    def test_handle_record_works_from_any_thread(self):
        tracer = Tracer(sample_rate=1.0)
        handle = tracer.begin("root")
        thread = threading.Thread(
            target=handle.record, args=("elsewhere", time.time(), 0.001)
        )
        thread.start()
        thread.join()
        handle.finish()
        assert "elsewhere" in {one.name for one in tracer.drain()}


class TestWirePropagation:
    def test_adopted_root_joins_the_senders_trace(self):
        supervisor = Tracer(sample_rate=1.0)
        shard = Tracer(sample_rate=0.0)  # remote sampling is irrelevant
        handle = supervisor.begin("cluster.request")
        field = handle.wire_field()
        assert field == {
            "id": handle.trace_id,
            "span": field["span"],
            "sampled": True,
        }

        remote = shard.begin("shard.serve", wire=field, shard_id=1)
        assert remote is not None
        with remote.activate():
            with span("serve.compile"):
                pass
        remote.finish()
        handle.finish()

        shard_spans = shard.drain()
        assert {one.trace_id for one in shard_spans} == {handle.trace_id}
        root = next(one for one in shard_spans if one.name == "shard.serve")
        assert root.parent_id == field["span"]

    @pytest.mark.parametrize(
        "field", [None, "junk", {}, {"id": 7}, {"id": ""}, {"span": "x"}]
    )
    def test_malformed_wire_fields_are_treated_as_absent(self, field):
        assert Tracer.adopt_wire_field(field) is None

    def test_adoption_tolerates_a_non_string_parent(self):
        assert Tracer.adopt_wire_field({"id": "abc", "span": 9}) == ("abc", "")


class TestExemplars:
    def test_fast_losers_are_discarded(self):
        tracer = Tracer(sample_rate=0.0, exemplar_threshold_s=10.0)
        handle = tracer.begin("root")
        assert handle is not None and not handle.sampled
        handle.finish()
        assert tracer.committed_traces == 0
        assert len(tracer.buffer) == 0

    def test_slow_losers_are_committed_as_exemplars(self):
        tracer = Tracer(sample_rate=0.0, exemplar_threshold_s=0.0)
        handle = tracer.begin("root")
        handle.finish()
        assert tracer.exemplar_traces == 1
        assert tracer.committed_traces == 1
        assert [one.name for one in tracer.drain()] == ["root"]

    def test_provisional_traces_never_propagate(self):
        tracer = Tracer(sample_rate=0.0, exemplar_threshold_s=10.0)
        handle = tracer.begin("root")
        assert handle.wire_field() is None


class TestHandleLifecycle:
    def test_finish_is_idempotent(self):
        tracer = Tracer(sample_rate=1.0)
        handle = tracer.begin("root")
        handle.finish()
        handle.finish()
        assert tracer.committed_traces == 1
        assert len(tracer.drain()) == 1

    def test_record_after_finish_is_dropped(self):
        tracer = Tracer(sample_rate=1.0)
        handle = tracer.begin("root")
        handle.finish()
        handle.record("late", time.time(), 0.001)
        assert {one.name for one in tracer.drain()} == {"root"}

    def test_annotations_land_on_the_root_span(self):
        tracer = Tracer(sample_rate=1.0)
        handle = tracer.begin("root", kind="ntt")
        handle.annotate(shard=2)
        handle.finish(outcome="ok")
        (root,) = tracer.drain()
        assert root.args == {"kind": "ntt", "shard": 2, "outcome": "ok"}

    def test_per_trace_span_cap_is_enforced_and_reported(self):
        tracer = Tracer(sample_rate=1.0, capacity=MAX_SPANS_PER_TRACE + 8)
        with tracer.trace("root") as handle:
            for index in range(MAX_SPANS_PER_TRACE + 10):
                record("child", time.time(), 0.0, index=index)
        spans = tracer.drain()
        # The child cap holds; the root span itself is exempt (a capped
        # trace must still commit its root or every child is an orphan).
        assert len(spans) <= MAX_SPANS_PER_TRACE + 1
        root = next(one for one in spans if one.name == "root")
        assert root.args["spans_dropped"] > 0
        assert handle.trace_id == root.trace_id


class TestSpanBuffer:
    def make_span(self, index: int) -> Span:
        return Span(
            trace_id="t",
            span_id=str(index),
            parent_id="",
            name=f"s{index}",
            cat="serve",
            ts_us=float(index),
            dur_us=1.0,
            process_id=1,
            thread_id=1,
        )

    def test_wraparound_keeps_newest_and_counts_drops(self):
        buffer = SpanBuffer(capacity=4)
        buffer.extend(self.make_span(index) for index in range(10))
        assert buffer.dropped == 6
        assert [one.span_id for one in buffer.snapshot()] == ["6", "7", "8", "9"]

    def test_drain_empties_snapshot_does_not(self):
        buffer = SpanBuffer(capacity=8)
        buffer.extend([self.make_span(1)])
        assert len(buffer.snapshot()) == 1
        assert len(buffer) == 1
        assert len(buffer.drain()) == 1
        assert len(buffer) == 0
        assert buffer.drain() == ()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanBuffer(capacity=0)


class TestSpanWireForm:
    def test_roundtrip(self):
        original = Span(
            trace_id="abc",
            span_id="1.2",
            parent_id="1.1",
            name="route",
            cat="wire",
            ts_us=123.0,
            dur_us=4.5,
            process_id=42,
            thread_id=7,
            args={"shard_id": 1},
        )
        assert Span.from_wire(original.to_wire()) == original

    @pytest.mark.parametrize(
        "payload",
        [
            "junk",
            {},
            {"trace": "t", "span": "s"},  # no name/ts/dur
            {"trace": "", "span": "s", "name": "n", "ts": 1, "dur": 1},
            {"trace": "t", "span": "s", "name": "n", "ts": "soon", "dur": 1},
            {"trace": "t", "span": "s", "name": "n", "ts": 1, "dur": True},
        ],
    )
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(ValueError):
            Span.from_wire(payload)
