"""Chrome trace-event export: structure, roundtrip, and validation.

The export is the contract between ``--trace`` and every consumer — the
Perfetto UI, ``tools/trace_summary.py``, and the ``/trace.json`` endpoint.
These tests pin the event structure (``"X"`` spans carrying their ids in
``args``, ``"M"`` process-name metadata with shard-aware naming) and that
``spans_from_chrome_trace`` is a faithful inverse that rejects structurally
invalid documents instead of summarizing garbage.
"""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    spans_from_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import Span


def make_span(name="route", ts=10.0, shard_id=None, pid=100) -> Span:
    args = {"shard_id": shard_id} if shard_id is not None else {}
    return Span(
        trace_id="trace-1",
        span_id=f"{pid:x}.{name}",
        parent_id="",
        name=name,
        cat="wire",
        ts_us=ts,
        dur_us=5.0,
        process_id=pid,
        thread_id=7,
        args=args,
    )


class TestChromeTrace:
    def test_events_are_complete_spans_sorted_by_start(self):
        doc = chrome_trace([make_span("b", ts=20.0), make_span("a", ts=10.0)])
        xs = [event for event in doc["traceEvents"] if event["ph"] == "X"]
        assert [event["name"] for event in xs] == ["a", "b"]
        assert all(
            {"trace_id", "span_id", "parent_id"} <= set(event["args"]) for event in xs
        )

    def test_process_metadata_names_shards(self):
        doc = chrome_trace(
            [make_span(shard_id=1, pid=200), make_span(pid=100)], label="repro"
        )
        names = {
            event["pid"]: event["args"]["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert names[200] == "repro shard 1"
        assert names[100] == "repro pid 100"

    def test_document_is_json_serializable_with_display_unit(self):
        doc = chrome_trace([make_span()])
        assert doc["displayTimeUnit"] == "ms"
        json.dumps(doc)  # must not raise


class TestRoundtrip:
    def test_spans_survive_export_and_reimport(self):
        spans = [make_span("a", ts=1.0), make_span("b", ts=2.0, shard_id=0)]
        rebuilt = spans_from_chrome_trace(chrome_trace(spans))
        assert rebuilt == spans

    def test_write_chrome_trace_is_loadable_from_disk(self, tmp_path):
        target = write_chrome_trace(tmp_path / "out.json", [make_span()])
        payload = json.loads(target.read_text())
        assert len(spans_from_chrome_trace(payload)) == 1

    def test_metadata_events_are_skipped_not_rejected(self):
        doc = chrome_trace([make_span(shard_id=1)])
        assert any(event["ph"] == "M" for event in doc["traceEvents"])
        assert len(spans_from_chrome_trace(doc)) == 1


class TestValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {},
            {"traceEvents": "nope"},
            {"traceEvents": ["not-an-object"]},
            {"traceEvents": [{"ph": "X", "name": "n", "ts": 1, "dur": 1}]},
            {
                "traceEvents": [
                    {"ph": "X", "name": "", "ts": 1, "dur": 1, "args": {"trace_id": "t"}}
                ]
            },
            {
                "traceEvents": [
                    {
                        "ph": "X",
                        "name": "n",
                        "ts": "later",
                        "dur": 1,
                        "args": {"trace_id": "t"},
                    }
                ]
            },
        ],
    )
    def test_invalid_documents_raise(self, payload):
        with pytest.raises(ValueError):
            spans_from_chrome_trace(payload)
