"""The ``--metrics-port`` scrape endpoint over a real localhost socket.

An ephemeral-port :class:`MetricsEndpoint` must answer ``/metrics`` with
the caller's exposition (correct content type, fresh per scrape),
``/trace.json`` with a loadable Chrome trace document, 404 elsewhere, and
a rendering failure must answer 500 without killing the endpoint.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.export import spans_from_chrome_trace
from repro.obs.http import MetricsEndpoint
from repro.obs.trace import Tracer


def get(endpoint: MetricsEndpoint, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{endpoint.port}{path}", timeout=5
    ) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


class TestMetricsEndpoint:
    def test_serves_live_metrics_on_both_roots(self):
        scrapes = []

        def metrics():
            scrapes.append(None)
            return f"repro_scrapes_total {len(scrapes)}\n"

        with MetricsEndpoint(0, metrics) as endpoint:
            status, content_type, body = get(endpoint, "/metrics")
            assert status == 200
            assert content_type.startswith("text/plain; version=0.0.4")
            assert body == b"repro_scrapes_total 1\n"
            _, _, body = get(endpoint, "/")
            assert body == b"repro_scrapes_total 2\n"  # fresh per scrape

    def test_trace_json_is_a_loadable_chrome_trace(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.trace("root"):
            pass
        with MetricsEndpoint(0, lambda: "", trace_fn=tracer.snapshot) as endpoint:
            status, content_type, body = get(endpoint, "/trace.json")
        assert status == 200
        assert content_type == "application/json"
        spans = spans_from_chrome_trace(json.loads(body))
        assert [one.name for one in spans] == ["root"]

    def test_trace_json_without_a_trace_fn_is_an_empty_document(self):
        with MetricsEndpoint(0, lambda: "") as endpoint:
            _, _, body = get(endpoint, "/trace.json")
        assert json.loads(body)["traceEvents"] == []

    def test_unknown_path_is_404(self):
        with MetricsEndpoint(0, lambda: "") as endpoint:
            with pytest.raises(urllib.error.HTTPError) as caught:
                get(endpoint, "/nope")
            assert caught.value.code == 404

    def test_render_failure_is_500_and_endpoint_survives(self):
        calls = []

        def metrics():
            calls.append(None)
            if len(calls) == 1:
                raise RuntimeError("flaky exporter")
            return "repro_ok 1\n"

        with MetricsEndpoint(0, metrics) as endpoint:
            with pytest.raises(urllib.error.HTTPError) as caught:
                get(endpoint, "/metrics")
            assert caught.value.code == 500
            status, _, body = get(endpoint, "/metrics")
            assert status == 200 and body == b"repro_ok 1\n"

    def test_close_releases_the_port(self):
        endpoint = MetricsEndpoint(0, lambda: "").start()
        port = endpoint.port
        endpoint.close()
        rebound = MetricsEndpoint(port, lambda: "").start()
        rebound.close()
