"""Prometheus text exposition: format validity and histogram semantics.

A scraper only needs three invariants from us: every sample line parses as
``name{labels} value``, every histogram's ``_bucket`` series is cumulative
and ends in ``+Inf`` equal to ``_count``, and the serve-layer renderers
cover every counter the snapshot carries.  Rendering is checked against
real :class:`ServerMetrics`/:class:`WireProfile` objects plus a minimal
cluster-stats stand-in (the renderers are deliberately duck-typed so
``repro.obs`` never imports the serve layer).
"""

import re
from types import SimpleNamespace

from repro.obs.promtext import (
    render_cluster_metrics,
    render_counter,
    render_gauge,
    render_histogram,
    render_server_metrics,
)
from repro.serve.metrics import (
    HISTOGRAM_BUCKET_BOUNDS_MS,
    ServerMetrics,
    WireProfile,
    latency_histogram,
)

#: One exposition sample: metric name, optional {labels}, numeric value.
SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9eE+-]+)?$"
)


def assert_parseable(text: str) -> None:
    for line in text.strip().splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert SAMPLE.match(line), f"unparseable sample line: {line!r}"


class TestPrimitives:
    def test_counter_has_help_type_and_sample(self):
        text = render_counter("repro_requests_total", 7, "Requests.")
        lines = text.splitlines()
        assert lines[0] == "# HELP repro_requests_total Requests."
        assert lines[1] == "# TYPE repro_requests_total counter"
        assert lines[2] == "repro_requests_total 7"

    def test_gauge_with_labels(self):
        text = render_gauge("repro_depth", 3, "Depth.", labels={"shard": 1})
        assert 'repro_depth{shard="1"} 3' in text
        assert_parseable(text)

    def test_histogram_buckets_are_cumulative_ending_in_inf(self):
        counts = latency_histogram((0.004, 0.004, 1.0, 100.0))
        text = render_histogram(
            "repro_latency_ms", counts, HISTOGRAM_BUCKET_BOUNDS_MS, "Latency."
        )
        assert_parseable(text)
        bucket_values = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if "_bucket{" in line
        ]
        assert bucket_values == sorted(bucket_values)  # cumulative
        assert bucket_values[-1] == 4  # +Inf sees every sample
        assert text.splitlines()[-1] == "repro_latency_ms_count 4"

    def test_overflow_count_folds_into_inf(self):
        counts = (0,) * len(HISTOGRAM_BUCKET_BOUNDS_MS) + (5,)
        text = render_histogram(
            "repro_latency_ms", counts, HISTOGRAM_BUCKET_BOUNDS_MS, "Latency."
        )
        last_finite = [line for line in text.splitlines() if "_bucket{" in line][-2]
        inf_line = [line for line in text.splitlines() if 'le="+Inf"' in line][0]
        assert last_finite.endswith(" 0")
        assert inf_line.endswith(" 5")


class TestServerExposition:
    def test_renders_every_counter_from_a_real_snapshot(self):
        metrics = ServerMetrics()
        metrics.record_request()
        metrics.record_warm(0.002)
        metrics.record_request()
        metrics.record_cold(0.050)
        metrics.record_tune_batch(3)
        text = render_server_metrics(metrics.snapshot(queue_depth=2, resident_kernels=1))
        assert_parseable(text)
        assert "repro_requests_total 2" in text
        assert "repro_warm_serves_total 1" in text
        assert "repro_cold_serves_total 1" in text
        assert "repro_batched_tunes_total 3" in text
        assert "repro_queue_depth 2" in text
        assert "repro_resident_kernels 1" in text
        assert "repro_latency_p50_ms" in text
        assert "repro_latency_p95_ms" in text


class TestClusterExposition:
    def make_stats(self, wire=None):
        shard = SimpleNamespace(
            shard_id=0,
            requests=5,
            warm_histogram=latency_histogram((0.001, 0.002)),
            cold_histogram=latency_histogram((0.100,)),
        )
        other = SimpleNamespace(
            shard_id=1,
            requests=3,
            warm_histogram=latency_histogram((0.004,)),
            cold_histogram=latency_histogram(()),
        )
        return SimpleNamespace(
            requests=8,
            warm_serves=3,
            cold_serves=1,
            dedup_hits=4,
            errors=0,
            tune_batches=1,
            batched_tunes=1,
            queue_depth=0,
            resident_kernels=4,
            shards=(shard, other),
            wire=wire,
        )

    def test_cluster_counters_and_per_shard_breakdown(self):
        text = render_cluster_metrics(self.make_stats(), HISTOGRAM_BUCKET_BOUNDS_MS)
        assert_parseable(text)
        assert "repro_shards 2" in text
        assert 'repro_shard_requests_total{shard="0"} 5' in text
        assert 'repro_shard_requests_total{shard="1"} 3' in text

    def test_latency_histograms_merge_across_shards_per_class(self):
        text = render_cluster_metrics(self.make_stats(), HISTOGRAM_BUCKET_BOUNDS_MS)
        warm_count = [
            line
            for line in text.splitlines()
            if line.startswith("repro_serve_latency_ms_count") and 'class="warm"' in line
        ][0]
        cold_count = [
            line
            for line in text.splitlines()
            if line.startswith("repro_serve_latency_ms_count") and 'class="cold"' in line
        ][0]
        assert warm_count.endswith(" 3")  # two from shard 0, one from shard 1
        assert cold_count.endswith(" 1")

    def test_wire_counters_render_when_present(self):
        profile = WireProfile()
        profile.record_send(100, 0.001, route_s=0.0005)
        profile.record_receive(250, 0.002)
        profile.record_flush(0.0001)
        text = render_cluster_metrics(
            self.make_stats(wire=profile.snapshot()), HISTOGRAM_BUCKET_BOUNDS_MS
        )
        assert_parseable(text)
        assert "repro_wire_messages_sent_total 1" in text
        assert "repro_wire_bytes_received_total 250" in text

    def test_wire_section_absent_without_a_profile(self):
        text = render_cluster_metrics(self.make_stats(), HISTOGRAM_BUCKET_BOUNDS_MS)
        assert "repro_wire_" not in text
