"""Structured logging: namespacing, idempotency, and trace correlation.

``configure_logging`` must be safe to call repeatedly (CLIs and tests
re-enter it) without stacking handlers, must confine itself to the
``repro`` namespace, and every record — text or JSON — must carry the
active trace id so a log line written under a traced request is joinable
with that request's spans.
"""

import io
import json
import logging

import pytest

from repro.obs.logs import (
    ROOT_LOGGER,
    TraceCorrelationFilter,
    configure_logging,
    get_logger,
)
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def reset_repro_logging():
    yield
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestGetLogger:
    def test_prefixes_bare_names(self):
        assert get_logger("serve.shard").name == "repro.serve.shard"

    def test_leaves_qualified_names_alone(self):
        assert get_logger("repro.serve").name == "repro.serve"
        assert get_logger("repro").name == "repro"


class TestConfigureLogging:
    def test_repeated_calls_do_not_stack_handlers(self):
        configure_logging("info")
        configure_logging("debug")
        root = logging.getLogger(ROOT_LOGGER)
        ours = [
            handler
            for handler in root.handlers
            if getattr(handler, "_repro_obs_handler", False)
        ]
        assert len(ours) == 1
        assert root.level == logging.DEBUG

    def test_process_root_logger_is_untouched(self):
        before = list(logging.getLogger().handlers)
        configure_logging("info")
        assert logging.getLogger().handlers == before
        # Propagation must survive, or root-level capture (pytest's caplog)
        # goes blind for the rest of the process once any CLI path runs.
        assert logging.getLogger(ROOT_LOGGER).propagate is True

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="log level"):
            configure_logging("loud")

    def test_text_format_carries_the_trace_id(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        tracer = Tracer(sample_rate=1.0)
        with tracer.trace("root") as handle:
            get_logger("serve.test").info("inside")
        get_logger("serve.test").info("outside")
        inside, outside = stream.getvalue().strip().splitlines()
        assert f"[{handle.trace_id}]" in inside
        assert "[-]" in outside

    def test_json_lines_are_parseable_and_correlated(self):
        stream = io.StringIO()
        configure_logging("info", json_lines=True, stream=stream)
        tracer = Tracer(sample_rate=1.0)
        with tracer.trace("root") as handle:
            get_logger("serve.test").info("traced %d", 7)
        payload = json.loads(stream.getvalue().strip())
        assert payload["message"] == "traced 7"
        assert payload["trace_id"] == handle.trace_id
        assert payload["logger"] == "repro.serve.test"
        assert payload["level"] == "INFO"

    def test_json_lines_capture_exceptions(self):
        stream = io.StringIO()
        configure_logging("info", json_lines=True, stream=stream)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("serve.test").exception("failed")
        payload = json.loads(stream.getvalue().strip())
        assert "boom" in payload["exception"]


class TestTraceCorrelationFilter:
    def test_stamps_dash_when_untraced(self):
        record = logging.LogRecord("repro.x", logging.INFO, "f", 1, "m", (), None)
        assert TraceCorrelationFilter().filter(record) is True
        assert record.trace_id == "-"
