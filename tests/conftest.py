"""Test-suite wide configuration.

Property-based tests exercise the full rewrite/codegen pipeline, whose first
invocation for a given width can take tens of milliseconds (legalization plus
optimization); Hypothesis' default per-example deadline is disabled so those
warm-up examples are not reported as flaky.

The profile is also derandomized: every run draws the same example sequence,
so a red CI run reproduces locally from the failing test name alone — the
same every-RNG-is-seeded policy the trace generator, the autotuner (seed 0),
and the benchmarks follow.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
