"""Test-suite wide configuration.

Property-based tests exercise the full rewrite/codegen pipeline, whose first
invocation for a given width can take tens of milliseconds (legalization plus
optimization); Hypothesis' default per-example deadline is disabled so those
warm-up examples are not reported as flaky.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
