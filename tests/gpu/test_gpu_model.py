"""Tests for the GPU device catalog, cost model and simulator."""

import pytest

from repro.errors import SimulationError
from repro.gpu import (
    DEVICES,
    cost_kernel,
    estimate_blas,
    estimate_ntt,
    get_device,
    moma_ntt_per_butterfly_ns,
)
from repro.gpu.cost_model import elementwise_kernel_time
from repro.kernels import KernelConfig, build_blas_kernel, generate_blas_kernel, generate_butterfly_kernel


class TestDeviceCatalog:
    def test_table2_values(self):
        h100 = get_device("h100")
        rtx = get_device("RTX4090")
        v100 = get_device("v100")
        assert h100.cuda_cores == 16896 and h100.max_clock_mhz == 1980
        assert rtx.cuda_cores == 16384 and rtx.max_clock_mhz == 2595
        assert v100.cuda_cores == 5120 and v100.max_clock_mhz == 1530
        assert (h100.memory_gb, rtx.memory_gb, v100.memory_gb) == (80, 24, 32)
        assert {d.memory_type for d in DEVICES.values()} == {"HBM3", "GDDR6X", "HBM2"}

    def test_unknown_device(self):
        with pytest.raises(SimulationError):
            get_device("a100")

    def test_derived_rates_positive_and_ordered(self):
        assert get_device("h100").peak_int64_ops_per_second > get_device("v100").peak_int64_ops_per_second
        assert get_device("h100").memory_bandwidth_bytes_per_second > get_device(
            "rtx4090"
        ).memory_bandwidth_bytes_per_second


class TestKernelCost:
    def test_requires_legalized_kernel(self):
        with pytest.raises(SimulationError):
            cost_kernel(build_blas_kernel("vadd", KernelConfig(bits=128)))

    def test_cost_grows_with_bit_width(self):
        costs = [
            cost_kernel(generate_butterfly_kernel(KernelConfig(bits=bits))).weighted_ops
            for bits in (128, 256, 512)
        ]
        assert costs[0] < costs[1] < costs[2]
        # Multiplication-dominated growth is super-linear in the word count.
        assert costs[2] / costs[0] > 4

    def test_mul_heavier_than_add(self):
        add_cost = cost_kernel(generate_blas_kernel("vadd", KernelConfig(bits=256)))
        mul_cost = cost_kernel(generate_blas_kernel("vmul", KernelConfig(bits=256)))
        assert mul_cost.weighted_ops > 3 * add_cost.weighted_ops
        assert mul_cost.multiplications > add_cost.multiplications

    def test_pruning_reduces_cost(self):
        pruned = cost_kernel(generate_butterfly_kernel(KernelConfig(bits=384)))
        padded = cost_kernel(generate_butterfly_kernel(KernelConfig(bits=512)))
        assert pruned.weighted_ops < padded.weighted_ops
        assert pruned.input_words < padded.input_words

    def test_elementwise_time_positive_and_monotone_in_elements(self):
        cost = cost_kernel(generate_blas_kernel("vadd", KernelConfig(bits=128)))
        device = get_device("v100")
        small = elementwise_kernel_time(cost, device, 1 << 10)
        large = elementwise_kernel_time(cost, device, 1 << 20)
        assert 0 < small < large
        with pytest.raises(SimulationError):
            elementwise_kernel_time(cost, device, 0)


class TestBlasEstimates:
    def test_steady_state_improves_on_tiny_batches(self):
        config = KernelConfig(bits=128)
        estimate = estimate_blas("vadd", config, "v100")
        assert estimate.per_element_ns > 0
        assert estimate.batch >= 1

    def test_cost_ordering_across_operations(self):
        config = KernelConfig(bits=256)
        vadd = estimate_blas("vadd", config, "v100").per_element_ns
        vmul = estimate_blas("vmul", config, "v100").per_element_ns
        axpy = estimate_blas("axpy", config, "v100").per_element_ns
        assert vadd < vmul <= axpy

    def test_wider_operands_cost_more(self):
        narrow = estimate_blas("vmul", KernelConfig(bits=128), "v100").per_element_ns
        wide = estimate_blas("vmul", KernelConfig(bits=1024), "v100").per_element_ns
        assert wide > 10 * narrow

    def test_invalid_elements(self):
        with pytest.raises(SimulationError):
            estimate_blas("vadd", KernelConfig(bits=128), "v100", elements=0)


class TestNttEstimates:
    def test_shared_memory_boundary(self):
        config = KernelConfig(bits=128)
        inside = estimate_ntt(config, 1 << 10, "v100")
        outside = estimate_ntt(config, 1 << 11, "v100")
        assert inside.shared_memory_fit
        assert not outside.shared_memory_fit
        # Figure 3a: leaving shared memory costs noticeably more per butterfly,
        # and more on the V100 than on the newer GPUs.
        v100_ratio = outside.per_butterfly_ns / inside.per_butterfly_ns
        h100_ratio = (
            estimate_ntt(config, 1 << 11, "h100").per_butterfly_ns
            / estimate_ntt(config, 1 << 10, "h100").per_butterfly_ns
        )
        assert v100_ratio > 1.3
        assert v100_ratio > h100_ratio

    def test_device_ordering(self):
        config = KernelConfig(bits=256)
        estimates = moma_ntt_per_butterfly_ns(256, 1 << 16)
        assert estimates["v100"] > estimates["h100"]
        assert estimates["v100"] > estimates["rtx4090"]
        assert set(estimates) == {"h100", "rtx4090", "v100"}
        del config

    def test_rtx4090_wins_at_high_bit_widths(self):
        # Section 5.3 (768-bit): "RTX 4090 outperforms H100", attributed to
        # its higher clock speed; at 128-bit the H100's bandwidth advantage
        # keeps it competitive.
        wide = moma_ntt_per_butterfly_ns(768, 1 << 14)
        assert wide["rtx4090"] < wide["h100"]

    def test_per_ntt_time_scales_with_size(self):
        config = KernelConfig(bits=128)
        small = estimate_ntt(config, 1 << 10, "h100").per_ntt_us
        large = estimate_ntt(config, 1 << 16, "h100").per_ntt_us
        assert large > 30 * small

    def test_batch_override_and_validation(self):
        config = KernelConfig(bits=128)
        fixed = estimate_ntt(config, 1 << 12, "h100", batch=1)
        steady = estimate_ntt(config, 1 << 12, "h100")
        assert steady.per_ntt_us <= fixed.per_ntt_us
        with pytest.raises(SimulationError):
            estimate_ntt(config, 1000, "h100")  # not a power of two
        with pytest.raises(SimulationError):
            estimate_ntt(config, 1 << 12, "h100", batch=0)

    def test_bit_width_scaling_monotone(self):
        # Figure 5a: runtime increases monotonically with the input bit-width.
        times = [
            estimate_ntt(KernelConfig(bits=bits), 4096, "h100").per_ntt_us
            for bits in (64, 128, 256, 512, 1024)
        ]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
