"""Tests for the per-figure evaluation harnesses (shape assertions)."""

import pytest

from repro.errors import EvaluationError
from repro.evaluation import (
    format_table,
    format_table2,
    geometric_mean_ratio,
    headline_speedups,
    run_figure1,
    run_figure2_panel,
    run_figure3_panel,
    run_figure4,
    run_figure5a,
    run_figure5b,
    run_figure5b_served,
    table1_rule_inventory,
    table2_devices,
)
from repro.evaluation.common import Series

#: Reduced size sweep so the harness tests stay quick; the benchmarks run the
#: full 2^8..2^22 sweep.
SIZES = (1 << 8, 1 << 12, 1 << 16, 1 << 20)


class TestCommon:
    def test_series_accessors(self):
        series = Series("demo", "cpu", {1: 2.0, 4: 8.0})
        assert series.at(1) == 2.0
        assert series.xs() == [1, 4]
        with pytest.raises(EvaluationError):
            series.at(2)

    def test_geometric_mean_ratio(self):
        a = Series("a", "x", {1: 2.0, 2: 8.0})
        b = Series("b", "x", {1: 1.0, 2: 2.0})
        assert geometric_mean_ratio(a, b) == pytest.approx((2.0 * 4.0) ** 0.5)
        with pytest.raises(EvaluationError):
            geometric_mean_ratio(a, Series("c", "x", {5: 1.0}))

    def test_format_table_renders_all_series(self):
        figure = run_figure2_panel(128)
        text = format_table(figure)
        assert "MoMA" in text and "GMP" in text and "GRNS" in text


class TestFigure1:
    def test_headline_speedups_match_paper_shape(self):
        speedups = headline_speedups(sizes=SIZES)
        # Paper: 14x average over ICICLE-on-H100, near-ASIC performance.
        assert 8 <= speedups["speedup_vs_icicle_h100"] <= 25
        assert speedups["ratio_to_fpmm_asic"] <= 1.3

    def test_series_present(self):
        figure = run_figure1(sizes=SIZES)
        assert set(figure.names()) >= {"MoMA (RTX 4090)", "ICICLE", "FPMM"}


class TestFigure2:
    @pytest.mark.parametrize("bits", [128, 256, 512, 1024])
    def test_moma_wins_every_operation(self, bits):
        figure = run_figure2_panel(bits)
        moma = figure.get("MoMA")
        for baseline_name in ("GMP", "GRNS"):
            baseline = figure.get(baseline_name)
            for x in moma.xs():
                assert baseline.at(x) / moma.at(x) >= 10  # "at least 13 times"

    def test_addsub_gaps_match_text(self):
        # >= 527x over GMP and >= 31x over GRNS for addition/subtraction.
        figure = run_figure2_panel(1024)
        moma, gmp, grns = figure.get("MoMA"), figure.get("GMP"), figure.get("GRNS")
        for index in (0, 1):  # vadd, vsub
            assert gmp.at(index) / moma.at(index) >= 500
            assert grns.at(index) / moma.at(index) >= 30

    def test_mul_trend_with_bit_width(self):
        # Speedup vs GRNS grows with bit-width, vs GMP shrinks (Section 5.2).
        ratios_grns = []
        ratios_gmp = []
        for bits in (128, 1024):
            figure = run_figure2_panel(bits)
            moma = figure.get("MoMA").at(2)  # vmul
            ratios_grns.append(figure.get("GRNS").at(2) / moma)
            ratios_gmp.append(figure.get("GMP").at(2) / moma)
        assert ratios_grns[1] > ratios_grns[0]
        assert ratios_gmp[1] < ratios_gmp[0]

    def test_invalid_bit_width(self):
        with pytest.raises(EvaluationError):
            run_figure2_panel(384)


class TestFigure3:
    def test_256_bit_panel_orderings(self):
        figure = run_figure3_panel(256, sizes=SIZES)
        moma_h100 = figure.get("MoMA (H100)")
        icicle = figure.get("ICICLE")
        # ICICLE is ~13x slower at every size.
        ratio = geometric_mean_ratio(icicle, moma_h100)
        assert 10 <= ratio <= 16
        # PipeZK loses to MoMA on every GPU (Section 5.3).
        pipezk = figure.get("PipeZK")
        for device in ("MoMA (H100)", "MoMA (RTX 4090)", "MoMA (V100)"):
            assert geometric_mean_ratio(pipezk, figure.get(device)) > 1

    def test_gzkp_crossover_at_256_bits(self):
        figure = run_figure3_panel(256, sizes=SIZES)
        gzkp = figure.get("GZKP")
        moma_v100 = figure.get("MoMA (V100)")
        assert gzkp.at(1 << 8) > moma_v100.at(1 << 8)      # MoMA wins small sizes
        assert gzkp.at(1 << 20) < moma_v100.at(1 << 20)    # GZKP wins large sizes

    def test_384_bit_relationships(self):
        figure = run_figure3_panel(384, sizes=SIZES)
        icicle_ratio = geometric_mean_ratio(figure.get("ICICLE"), figure.get("MoMA (H100)"))
        assert 3.5 <= icicle_ratio <= 6.5  # paper: 4.8x
        # FPMM beats MoMA at 384 bits (1.7x).
        assert geometric_mean_ratio(figure.get("MoMA (H100)"), figure.get("FPMM")) > 1.3
        # MoMA on V100 still beats ICICLE-on-H100 (paper: by ~3x; our device
        # model gives the V100 a larger handicap relative to the H100, so the
        # margin shrinks — see EXPERIMENTS.md — but the ordering holds).
        assert geometric_mean_ratio(figure.get("ICICLE"), figure.get("MoMA (V100)")) > 1.0

    def test_128_bit_near_asic(self):
        figure = run_figure3_panel(128, sizes=SIZES)
        rpu_ratio = geometric_mean_ratio(figure.get("RPU"), figure.get("MoMA (H100)"))
        assert 1.1 <= rpu_ratio <= 1.8  # paper: 1.4x
        assert geometric_mean_ratio(figure.get("OpenFHE"), figure.get("MoMA (H100)")) > 50

    def test_768_bit_relationships(self):
        figure = run_figure3_panel(768, sizes=SIZES)
        # RTX 4090 beats H100 at 768 bits (Section 5.3).
        assert geometric_mean_ratio(figure.get("MoMA (H100)"), figure.get("MoMA (RTX 4090)")) > 1
        # GZKP overtakes MoMA at 2^16 and beyond.
        assert figure.get("GZKP").at(1 << 20) < figure.get("MoMA (H100)").at(1 << 20)
        assert figure.get("GZKP").at(1 << 8) > figure.get("MoMA (H100)").at(1 << 8)

    def test_invalid_bit_width(self):
        with pytest.raises(EvaluationError):
            run_figure3_panel(512)


class TestFigure4:
    def test_crosscut_contains_all_bit_widths_and_beats_gmp(self):
        figure = run_figure4()
        moma = figure.get("MoMA (H100)")
        gmp = figure.get("GMP-NTT")
        assert moma.xs() == [128, 256, 384, 512, 768, 1024]
        for bits in moma.xs():
            assert gmp.at(bits) > moma.at(bits)
        # Runtime per butterfly grows with the bit-width.
        values = [moma.at(bits) for bits in moma.xs()]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestFigure5:
    def test_5a_monotone_and_device_gap(self):
        figure = run_figure5a()
        h100 = figure.get("H100")
        rtx = figure.get("RTX 4090")
        widths = h100.xs()
        assert widths[0] == 64 and widths[-1] == 1024
        h100_values = [h100.at(bits) for bits in widths]
        assert all(b > a for a, b in zip(h100_values, h100_values[1:]))
        # Beyond 512 bits the two GPUs stay within a bounded gap (paper:
        # "the performance gap ... remains relatively constant").
        gap_512 = h100.at(512) / rtx.at(512)
        gap_1024 = h100.at(1024) / rtx.at(1024)
        assert 0.5 < gap_1024 / gap_512 < 2.0

    def test_5a_slowdown_factors_same_order_as_paper(self):
        figure = run_figure5a()
        h100 = figure.get("H100")
        # Paper: 2.9x (64->128), 5.6x (128->256), 4.8x (256->512), 4.7x
        # (512->1024) on H100.  The model reproduces the order of magnitude
        # (between 2x and 8x per doubling).
        for low, high in ((64, 128), (128, 256), (256, 512), (512, 1024)):
            ratio = h100.at(high) / h100.at(low)
            assert 2.0 <= ratio <= 8.0

    def test_5b_reports_both_algorithms(self):
        figure = run_figure5b()
        school = figure.get("Schoolbook")
        karatsuba = figure.get("Karatsuba")
        assert school.xs() == karatsuba.xs() == [128, 256, 384, 768]
        for bits in school.xs():
            assert school.at(bits) > 0 and karatsuba.at(bits) > 0


class TestFigure5Served:
    def test_served_sweep_is_warm_on_the_second_pass(self):
        figure = run_figure5b_served(size=16)
        assert set(figure.names()) == {"Default", "Served (tuned)"}
        default, served = figure.series
        for bits in default.xs():
            assert served.at(bits) <= default.at(bits)
        # The harness re-sweeps after the cold pass; the serving invariant
        # (no compilation, no tuning-db access per warm request) is recorded
        # in the figure notes.
        assert any(
            "0 compilations, 0 tuning-db lookups" in note for note in figure.notes
        )


class TestTables:
    def test_table1_inventory_covers_all_operations(self):
        inventory = table1_rule_inventory()
        operations = {entry["operation"] for entry in inventory}
        assert {"addmod", "submod", "mulmod", "add", "sub", "mul", "lt", "eq"} <= operations
        assert all(entry["implementation"] for entry in inventory)

    def test_table2_matches_paper(self):
        rows = {row["Model"]: row for row in table2_devices()}
        assert rows["NVIDIA H100 Tensor Core"]["#Cores"] == 16896
        assert rows["NVIDIA GeForce RTX 4090"]["Max Freq."] == "2595 MHz"
        assert rows["NVIDIA Tesla V100 Tensor Core"]["Bus Type"] == "HBM2"
        assert "16896" in format_table2()
