"""Tests for polynomials, BLAS engines and polynomial multiplication."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ArithmeticDomainError, KernelError
from repro.kernels import KernelConfig
from repro.ntt import make_plan
from repro.poly import (
    MomaBlasEngine,
    Polynomial,
    PythonBlasEngine,
    axpy,
    multiply_negacyclic,
    multiply_ntt,
    multiply_schoolbook,
    vector_addmod,
    vector_mulmod,
    vector_submod,
)
from repro.ntheory import find_ntt_prime

Q = find_ntt_prime(60, 1024)


class TestPolynomial:
    def test_construction_reduces_coefficients(self):
        poly = Polynomial([Q + 1, -1], Q)
        assert poly.coefficients == [1, Q - 1]

    def test_zero_length_becomes_zero_polynomial(self):
        assert Polynomial([], Q).coefficients == [0]

    def test_bad_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            Polynomial([1], 1)

    def test_degree_ignores_trailing_zeros(self):
        assert Polynomial([1, 2, 0, 0], Q).degree == 1
        assert Polynomial([0], Q).degree == 0

    def test_add_sub_roundtrip(self):
        rng = random.Random(0)
        a = Polynomial([rng.randrange(Q) for _ in range(10)], Q)
        b = Polynomial([rng.randrange(Q) for _ in range(7)], Q)
        assert (a + b) - b == a

    def test_mul_matches_naive(self):
        a = Polynomial([1, 2, 3], Q)
        b = Polynomial([4, 5], Q)
        assert (a * b).coefficients == [4, 13, 22, 15]

    def test_modulus_mismatch_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            Polynomial([1], Q) + Polynomial([1], Q - 2)

    def test_pointwise_requires_equal_lengths(self):
        with pytest.raises(ArithmeticDomainError):
            Polynomial([1, 2], Q).pointwise_multiply(Polynomial([1], Q))

    def test_padded_cannot_truncate_nonzero(self):
        with pytest.raises(ArithmeticDomainError):
            Polynomial([1, 2, 3], Q).padded(2)

    def test_evaluate_horner(self):
        poly = Polynomial([1, 2, 5, 1], Q)  # paper's example f(x) = x^3 + 5x^2 + 2x + 1
        assert poly.evaluate(0) == 1
        assert poly.evaluate(1) == 9 % Q
        assert poly.evaluate(2) == (8 + 20 + 4 + 1) % Q

    def test_scale(self):
        poly = Polynomial([1, 2], Q).scale(3)
        assert poly.coefficients == [3, 6]


class TestBlasEngines:
    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_python_engine_matches_modular_arithmetic(self, data):
        length = data.draw(st.integers(min_value=1, max_value=16))
        x = [data.draw(st.integers(min_value=0, max_value=Q - 1)) for _ in range(length)]
        y = [data.draw(st.integers(min_value=0, max_value=Q - 1)) for _ in range(length)]
        scale = data.draw(st.integers(min_value=0, max_value=Q - 1))
        assert vector_addmod(x, y, Q) == [(a + b) % Q for a, b in zip(x, y)]
        assert vector_submod(x, y, Q) == [(a - b) % Q for a, b in zip(x, y)]
        assert vector_mulmod(x, y, Q) == [(a * b) % Q for a, b in zip(x, y)]
        assert axpy(scale, x, y, Q) == [(scale * a + b) % Q for a, b in zip(x, y)]

    def test_unreduced_input_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            vector_addmod([Q], [0], Q)
        with pytest.raises(ArithmeticDomainError):
            vector_addmod([0, 1], [0], Q)

    def test_moma_engine_matches_python_engine(self):
        config = KernelConfig(bits=128)
        q = find_ntt_prime(124, 16)
        moma = MomaBlasEngine(config)
        python = PythonBlasEngine()
        rng = random.Random(1)
        x = [rng.randrange(q) for _ in range(8)]
        y = [rng.randrange(q) for _ in range(8)]
        scale = rng.randrange(q)
        assert moma.vadd(x, y, q) == python.vadd(x, y, q)
        assert moma.vsub(x, y, q) == python.vsub(x, y, q)
        assert moma.vmul(x, y, q) == python.vmul(x, y, q)
        assert moma.axpy(scale, x, y, q) == python.axpy(scale, x, y, q)


class TestMultiplication:
    def test_ntt_multiplication_matches_schoolbook(self):
        plan_modulus = make_plan(32, 60).modulus
        rng = random.Random(3)
        a = Polynomial([rng.randrange(plan_modulus) for _ in range(12)], plan_modulus)
        b = Polynomial([rng.randrange(plan_modulus) for _ in range(9)], plan_modulus)
        assert multiply_ntt(a, b) == multiply_schoolbook(a, b)

    def test_negacyclic_matches_schoolbook_reduction(self):
        plan = make_plan(16, 60)
        q = plan.modulus
        rng = random.Random(4)
        a = Polynomial([rng.randrange(q) for _ in range(16)], q)
        b = Polynomial([rng.randrange(q) for _ in range(16)], q)
        full = multiply_schoolbook(a, b).padded(32).coefficients
        reduced = [(full[i] - full[i + 16]) % q for i in range(16)]
        assert multiply_negacyclic(a, b, plan).coefficients == reduced

    def test_modulus_mismatch_rejected(self):
        plan = make_plan(8, 60)
        a = Polynomial([1], plan.modulus)
        b = Polynomial([1], Q if Q != plan.modulus else Q - 2)
        with pytest.raises(KernelError):
            multiply_ntt(a, b)

    def test_non_ntt_friendly_modulus_rejected(self):
        # 2^61 - 1 is prime but 2^61 - 2 is not divisible by large powers of two.
        bad = Polynomial([1, 1], (1 << 61) - 1)
        with pytest.raises(Exception):
            multiply_ntt(bad, bad)
