"""Tests for the evaluator, the autotuner, and the driver/frontend plumbing."""

import pytest

from repro.core.driver import CompilerSession
from repro.gpu.simulator import estimate_blas, estimate_ntt
from repro.kernels import KernelConfig, build_butterfly_kernel
from repro.kernels.blas_gen import generate_blas_kernel
from repro.kernels.ntt_gen import generate_butterfly_kernel
from repro.ntt import GeneratedNTT, make_stage_plan
from repro.poly.blas import MomaBlasEngine, PythonBlasEngine
from repro.tune import (
    Autotuner,
    CandidateEvaluator,
    Candidate,
    TuningDatabase,
    Workload,
    default_candidate,
    tune_workload,
)


@pytest.fixture
def session():
    return CompilerSession()


@pytest.fixture
def ntt_workload():
    return Workload(kind="ntt", bits=256, size=4096)


@pytest.fixture
def blas_workload():
    return Workload(kind="blas", bits=256, operation="vmul")


class TestEvaluator:
    def test_scores_are_memoized_and_cached(self, session, ntt_workload):
        evaluator = CandidateEvaluator(ntt_workload, "rtx4090", session=session)
        first = evaluator.score(default_candidate())
        assert first.compile_misses > 0
        second = evaluator.score(default_candidate())
        assert second is first  # evaluator-level memo
        # A same-kernel candidate (different batch only) hits the driver cache.
        rebatched = evaluator.score(Candidate(batch=64))
        assert rebatched.compile_misses == 0

    def test_ntt_score_matches_simulator(self, session, ntt_workload):
        evaluator = CandidateEvaluator(ntt_workload, "rtx4090", session=session)
        score = evaluator.score(default_candidate())
        direct = estimate_ntt(
            ntt_workload.default_config(), 4096, "rtx4090", session=session
        )
        assert score.seconds == pytest.approx(direct.per_ntt_us * 1e-6)

    def test_blas_score_matches_simulator(self, session, blas_workload):
        evaluator = CandidateEvaluator(blas_workload, "h100", session=session)
        score = evaluator.score(default_candidate())
        direct = estimate_blas(
            "vmul", blas_workload.default_config(), "h100", session=session
        )
        assert score.seconds == pytest.approx(direct.per_element_ns * 1e-9)

    def test_stage_span_reduces_staged_ntt_cost(self, session, ntt_workload):
        evaluator = CandidateEvaluator(ntt_workload, "rtx4090", session=session)
        stage_per_launch = evaluator.score(default_candidate())
        fused = evaluator.score(Candidate(stage_span=4))
        assert fused.seconds < stage_per_launch.seconds
        assert fused.estimate.launches < stage_per_launch.estimate.launches


class TestAutotuner:
    @pytest.mark.parametrize("strategy", ["exhaustive", "random", "hillclimb", "auto"])
    def test_winner_never_worse_than_default(self, session, ntt_workload, strategy):
        result = Autotuner(session=session, strategy=strategy).tune(ntt_workload, "rtx4090")
        assert result.score_seconds <= result.baseline_seconds
        assert result.speedup >= 1.0
        assert not result.from_database

    def test_result_config_matches_candidate(self, session, ntt_workload):
        result = Autotuner(session=session).tune(ntt_workload, "rtx4090")
        assert result.config == result.candidate.kernel_config(ntt_workload)

    def test_warm_database_skips_search_entirely(self, session, ntt_workload):
        db = TuningDatabase()
        tuner = Autotuner(session=session, db=db)
        cold = tuner.tune(ntt_workload, "rtx4090")
        assert cold.evaluations > 0

        misses_before = session.cache_info().misses
        warm = tuner.tune(ntt_workload, "rtx4090")
        assert warm.from_database
        assert warm.strategy == "database"
        assert warm.evaluations == 0
        assert warm.candidate == cold.candidate
        assert session.cache_info().misses == misses_before  # zero compilations
        assert db.stats().hits == 1

    def test_devices_are_tuned_independently(self, session, ntt_workload):
        db = TuningDatabase()
        tuner = Autotuner(session=session, db=db)
        tuner.tune(ntt_workload, "rtx4090")
        other = tuner.tune(ntt_workload, "h100")
        assert not other.from_database
        assert db.stats().records == 2

    def test_persistent_database_warm_across_tuners(self, tmp_path, ntt_workload):
        path = tmp_path / "tuning.json"
        first = tune_workload(ntt_workload, "rtx4090", db=TuningDatabase(path))
        second = tune_workload(ntt_workload, "rtx4090", db=TuningDatabase(path))
        assert not first.from_database
        assert second.from_database
        assert second.candidate == first.candidate

    def test_blas_workload_tunes(self, session, blas_workload):
        result = Autotuner(session=session).tune(blas_workload, "v100")
        assert result.score_seconds <= result.baseline_seconds
        assert result.candidate.stage_span == 1


class TestCompileTuned:
    def test_compile_tuned_from_kernel(self, session):
        wide = build_butterfly_kernel(KernelConfig(bits=256))
        tuned = session.compile_tuned(wide, target="cuda", device="rtx4090")
        assert isinstance(tuned.artifact, str) and "__global__" in tuned.artifact
        assert tuned.target == "cuda"
        assert tuned.tuning.score_seconds <= tuned.tuning.baseline_seconds

    def test_compile_tuned_from_workload(self, session, blas_workload):
        tuned = session.compile_tuned(blas_workload, target="python_exec", device="h100")
        assert tuned.config.bits == 256
        assert callable(tuned.artifact)  # python_exec returns a CompiledKernel

    def test_warm_db_second_compile_is_all_cache_hits(self, session, ntt_workload):
        db = TuningDatabase()
        session.compile_tuned(ntt_workload, target="cuda", device="rtx4090", db=db)
        misses = session.cache_info().misses
        again = session.compile_tuned(ntt_workload, target="cuda", device="rtx4090", db=db)
        assert again.tuning.from_database
        assert session.cache_info().misses == misses

    def test_session_owns_default_db_so_repeat_calls_skip_search(
        self, session, ntt_workload
    ):
        cold = session.compile_tuned(ntt_workload, target="cuda", device="rtx4090")
        misses = session.cache_info().misses
        warm = session.compile_tuned(ntt_workload, target="cuda", device="rtx4090")
        assert not cold.tuning.from_database
        assert warm.tuning.from_database
        assert session.cache_info().misses == misses

    def test_cold_result_carries_sorted_trials(self, session, ntt_workload):
        result = Autotuner(session=session).tune(ntt_workload, "rtx4090")
        scores = [trial.score for trial in result.trials]
        assert scores == sorted(scores)
        assert result.trials[0].candidate == result.candidate
        warm_db = TuningDatabase()
        tuner = Autotuner(session=session, db=warm_db)
        tuner.tune(ntt_workload, "rtx4090")
        assert tuner.tune(ntt_workload, "rtx4090").trials == ()


class TestFrontendPlumbing:
    def test_generate_butterfly_autotune(self, session):
        db = TuningDatabase()
        kernel = generate_butterfly_kernel(
            KernelConfig(bits=256), session=session, autotune=True, tuning_db=db
        )
        assert kernel.metadata["legalized"]
        assert db.stats().records == 1

    def test_generate_blas_autotune(self, session):
        db = TuningDatabase()
        kernel = generate_blas_kernel(
            "vmul", KernelConfig(bits=256), session=session, autotune=True, tuning_db=db
        )
        assert kernel.metadata["legalized"]
        assert db.stats().records == 1

    def test_generated_ntt_autotune_round_trips(self, session):
        db = TuningDatabase()
        ntt = GeneratedNTT(
            64, KernelConfig(bits=64), session=session, autotune=True, tuning_db=db
        )
        values = list(range(64))
        assert ntt.inverse(ntt.forward(values)) == values
        assert db.stats().records == 1

    def test_moma_blas_engine_autotune_matches_python(self, session):
        db = TuningDatabase()
        from repro.ntheory import find_ntt_prime

        q = find_ntt_prime(60, 8)
        config = KernelConfig(bits=64, modulus_bits=60)
        tuned = MomaBlasEngine(config, session=session, autotune=True, tuning_db=db)
        x = [3, 5, 7, q - 1]
        y = [2, 9, 0, q - 2]
        reference = PythonBlasEngine()
        assert tuned.vmul(x, y, q) == reference.vmul(x, y, q)
        assert tuned.axpy(4, x, y, q) == reference.axpy(4, x, y, q)
        assert db.stats().records == 4  # one tuned record per BLAS operation
        # The engine reports what each kernel was actually generated with,
        # while config keeps the requested semantic identity.
        assert set(tuned.operation_configs) == {"vadd", "vsub", "vmul", "axpy"}
        for generated in tuned.operation_configs.values():
            assert generated.bits == config.bits
            assert generated.effective_modulus_bits == config.effective_modulus_bits
        assert tuned.config == config

    def test_autotune_works_on_sub_64_bit_configs(self, session):
        # KernelConfig(bits=32, word_bits=32) is valid; turning autotune on
        # must tune against a 32-bit-word baseline, not raise.
        db = TuningDatabase()
        config = KernelConfig(bits=32, word_bits=32)
        kernel = generate_blas_kernel(
            "vadd", config, session=session, autotune=True, tuning_db=db
        )
        assert kernel.metadata["legalized"]
        assert db.stats().records == 1


class TestSimulatorExtensions:
    def test_estimate_blas_fixed_batch_no_better_than_auto(self, session):
        config = KernelConfig(bits=256)
        auto = estimate_blas("vmul", config, "rtx4090", session=session)
        fixed = estimate_blas("vmul", config, "rtx4090", batch=1, session=session)
        assert fixed.batch == 1
        assert fixed.per_element_ns >= auto.per_element_ns

    def test_estimate_ntt_stage_plan_mismatch_rejected(self, session):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="stage plan"):
            estimate_ntt(
                KernelConfig(bits=256),
                4096,
                "rtx4090",
                stage_plan=make_stage_plan(2048, 2),
                session=session,
            )

    def test_stage_plan_irrelevant_for_shared_memory_transforms(self, session):
        config = KernelConfig(bits=256)
        base = estimate_ntt(config, 1024, "rtx4090", session=session)
        fused = estimate_ntt(
            config, 1024, "rtx4090", stage_plan=make_stage_plan(1024, 2), session=session
        )
        assert base.shared_memory_fit and fused.shared_memory_fit
        assert base.per_ntt_us == fused.per_ntt_us
        assert base.launches == fused.launches == 1
