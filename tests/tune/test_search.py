"""Tests for the search strategies (determinism, optimality, early stop)."""

import pytest

from repro.errors import TuningError
from repro.gpu.device import get_device
from repro.tune import (
    TuningSpace,
    Workload,
    default_candidate,
    exhaustive_search,
    get_strategy,
    hillclimb_search,
    random_search,
    resolve_strategy,
)


@pytest.fixture
def space():
    return TuningSpace(Workload(kind="ntt", bits=256, size=4096), get_device("rtx4090"))


def synthetic_objective(space):
    """A deterministic objective with a unique global optimum."""
    ranked = {candidate: index for index, candidate in enumerate(space.candidates())}
    target = space.candidates()[len(space) // 2]

    def evaluate(candidate):
        if candidate == target:
            return 0.5
        return 1.0 + ranked[candidate] * 0.01

    return evaluate, target


class TestExhaustive:
    def test_finds_global_optimum(self, space):
        evaluate, target = synthetic_objective(space)
        result = exhaustive_search(space, evaluate)
        assert result.best.candidate == target
        assert result.best.score == 0.5
        assert result.evaluations == len(space)

    def test_each_candidate_scored_once(self, space):
        calls = []
        exhaustive_search(space, lambda c: calls.append(c) or 1.0)
        assert len(calls) == len(set(calls)) == len(space)


class TestRandom:
    def test_deterministic_under_seed(self, space):
        evaluate, _ = synthetic_objective(space)
        first = random_search(space, evaluate, seed=7, samples=10)
        second = random_search(space, evaluate, seed=7, samples=10)
        assert first.trials == second.trials
        assert first.best == second.best

    def test_different_seeds_sample_differently(self, space):
        evaluate, _ = synthetic_objective(space)
        first = random_search(space, evaluate, seed=1, samples=5)
        second = random_search(space, evaluate, seed=2, samples=5)
        assert {t.candidate for t in first.trials} != {t.candidate for t in second.trials}

    def test_default_always_included(self, space):
        evaluate, _ = synthetic_objective(space)
        result = random_search(space, evaluate, seed=3, samples=2)
        assert default_candidate() in {trial.candidate for trial in result.trials}

    def test_never_worse_than_default(self, space):
        evaluate, _ = synthetic_objective(space)
        for seed in range(5):
            result = random_search(space, evaluate, seed=seed, samples=4)
            assert result.best.score <= evaluate(default_candidate())

    def test_invalid_samples_rejected(self, space):
        with pytest.raises(TuningError):
            random_search(space, lambda c: 1.0, samples=0)


class TestHillclimb:
    def test_never_worse_than_default(self, space):
        evaluate, _ = synthetic_objective(space)
        result = hillclimb_search(space, evaluate)
        assert result.best.score <= evaluate(default_candidate())

    def test_deterministic(self, space):
        evaluate, _ = synthetic_objective(space)
        first = hillclimb_search(space, evaluate, seed=0)
        second = hillclimb_search(space, evaluate, seed=0)
        assert first.trials == second.trials

    def test_early_stop_on_local_optimum(self, space):
        # An objective where the default is already optimal: the climb must
        # stop after scoring just the default and its immediate neighbors.
        def evaluate(candidate):
            return 1.0 if candidate == default_candidate() else 2.0

        result = hillclimb_search(space, evaluate)
        assert result.best.candidate == default_candidate()
        assert result.evaluations <= 1 + len(space.neighbors(default_candidate()))

    def test_explores_less_than_exhaustive_on_large_space(self, space):
        evaluate, _ = synthetic_objective(space)
        result = hillclimb_search(space, evaluate)
        assert result.evaluations < len(space)

    def test_invalid_max_steps_rejected(self, space):
        with pytest.raises(TuningError):
            hillclimb_search(space, lambda c: 1.0, max_steps=0)


class TestRegistry:
    def test_get_strategy(self):
        assert get_strategy("exhaustive") is exhaustive_search
        with pytest.raises(TuningError, match="unknown search strategy"):
            get_strategy("simulated_annealing")

    def test_resolve_auto_by_space_size(self, space):
        # The rtx4090 256-bit NTT space has 72 candidates (> 64): hillclimb.
        assert len(space) > 64
        assert resolve_strategy("auto", space) == "hillclimb"
        small = TuningSpace(
            Workload(kind="blas", bits=256, operation="vadd"), get_device("rtx4090")
        )
        assert resolve_strategy("auto", small) == "exhaustive"

    def test_resolve_concrete_passthrough(self, space):
        assert resolve_strategy("random", space) == "random"
        with pytest.raises(TuningError):
            resolve_strategy("anneal", space)
