"""Tests for the persistent tuning database (round trips, atomicity, counters)."""

import json

import pytest

from repro.errors import TuningError
from repro.tune import (
    TUNER_VERSION,
    Candidate,
    TuningDatabase,
    TuningRecord,
    Workload,
)


@pytest.fixture
def workload():
    return Workload(kind="ntt", bits=256, size=4096)


def make_record(workload, device="rtx4090", candidate=None):
    return TuningRecord(
        fingerprint=workload.fingerprint(),
        workload_key=workload.key,
        device=device,
        tuner_version=TUNER_VERSION,
        candidate=candidate or Candidate(multiplication="karatsuba", batch=256),
        score_seconds=1.0e-5,
        baseline_seconds=1.5e-5,
        strategy="exhaustive",
        evaluations=72,
        space_size=72,
        created_at=1700000000.0,
    )


class TestRecord:
    def test_json_round_trip(self, workload):
        record = make_record(workload)
        assert TuningRecord.from_json(record.to_json()) == record

    def test_key_includes_device_and_version(self, workload):
        record = make_record(workload)
        assert record.key() == f"{workload.fingerprint()}::rtx4090::v{TUNER_VERSION}"

    def test_corrupt_payload_rejected(self):
        with pytest.raises(TuningError, match="corrupt"):
            TuningRecord.from_json({"candidate": {"multiplication": "schoolbook"}})

    @pytest.mark.parametrize(
        "patch",
        [
            {"candidate": {"multiplication": "fft"}},
            {"candidate": {"word_bits": 48}},
            {"candidate": {"stage_span": 0}},
            {"candidate": {"batch": -1}},
            {"score_seconds": 0.0},
            {"score_seconds": "fast"},
            {"evaluations": -3},
        ],
    )
    def test_semantically_corrupt_records_rejected_at_load(self, workload, patch):
        # A hand-edited database must fail with TuningError at load time, not
        # later as a KernelError inside the frontends serving the "winner".
        payload = make_record(workload).to_json()
        for key, value in patch.items():
            if key == "candidate":
                payload["candidate"].update(value)
            else:
                payload[key] = value
        with pytest.raises(TuningError, match="corrupt"):
            TuningRecord.from_json(payload)


class TestDatabase:
    def test_in_memory_store_and_lookup(self, workload):
        db = TuningDatabase()
        assert db.lookup(workload, "rtx4090") is None
        db.store(make_record(workload))
        found = db.lookup(workload, "rtx4090")
        assert found is not None and found.candidate.multiplication == "karatsuba"
        stats = db.stats()
        assert (stats.hits, stats.misses, stats.stores, stats.records) == (1, 1, 1, 1)

    def test_lookup_is_device_scoped(self, workload):
        db = TuningDatabase()
        db.store(make_record(workload, device="rtx4090"))
        assert db.lookup(workload, "h100") is None
        assert db.lookup(workload, "rtx4090") is not None

    def test_lookup_is_workload_scoped(self, workload):
        db = TuningDatabase()
        db.store(make_record(workload))
        other = Workload(kind="ntt", bits=384, size=4096)
        assert db.lookup(other, "rtx4090") is None

    def test_persistence_round_trip(self, tmp_path, workload):
        path = tmp_path / "tuning.json"
        db = TuningDatabase(path)
        db.store(make_record(workload))
        assert path.exists()

        warm = TuningDatabase(path)
        assert len(warm) == 1
        found = warm.lookup(workload, "rtx4090")
        assert found == make_record(workload)

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path, workload):
        path = tmp_path / "tuning.json"
        db = TuningDatabase(path)
        db.store(make_record(workload))
        leftovers = [p for p in tmp_path.iterdir() if p.name != "tuning.json"]
        assert leftovers == []
        # The file is valid JSON with the schema header.
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["tuner_version"] == TUNER_VERSION

    def test_store_without_save_keeps_file_unchanged(self, tmp_path, workload):
        path = tmp_path / "tuning.json"
        db = TuningDatabase(path)
        db.store(make_record(workload), save=False)
        assert not path.exists()
        db.save()
        assert path.exists()

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TuningError, match="cannot read"):
            TuningDatabase(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": 99, "records": {}}))
        with pytest.raises(TuningError, match="schema"):
            TuningDatabase(path)

    def test_missing_records_section_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(TuningError, match="records"):
            TuningDatabase(path)

    def test_creates_parent_directories(self, tmp_path, workload):
        path = tmp_path / "nested" / "dir" / "tuning.json"
        db = TuningDatabase(path)
        db.store(make_record(workload))
        assert path.exists()
