"""Tests for the tuning search space (workloads, candidates, constraints)."""

import pytest

from repro.errors import TuningError
from repro.gpu.device import get_device
from repro.kernels import KernelConfig, build_blas_kernel, build_butterfly_kernel
from repro.tune import Candidate, TuningSpace, Workload, default_candidate


@pytest.fixture
def rtx4090():
    return get_device("rtx4090")


class TestWorkload:
    def test_ntt_key(self):
        workload = Workload(kind="ntt", bits=256, size=4096)
        assert workload.key == "ntt/cooley_tukey/n4096/256b"

    def test_blas_key(self):
        workload = Workload(kind="blas", bits=384, operation="vmul")
        assert workload.key == "blas/vmul/e1048576/384b"

    def test_invalid_kind_rejected(self):
        with pytest.raises(TuningError, match="kind"):
            Workload(kind="fft", bits=256)

    def test_invalid_operation_rejected(self):
        with pytest.raises(TuningError):
            Workload(kind="blas", bits=256, operation="dot")
        with pytest.raises(TuningError):
            Workload(kind="ntt", bits=256, operation="stockham")

    def test_non_power_of_two_size_rejected(self):
        with pytest.raises(TuningError, match="power of two"):
            Workload(kind="ntt", bits=256, size=1000)

    def test_from_kernel_ntt(self):
        kernel = build_butterfly_kernel(KernelConfig(bits=256))
        workload = Workload.from_kernel(kernel)
        assert workload.kind == "ntt"
        assert workload.bits == 256
        assert workload.operation == "cooley_tukey"

    def test_from_kernel_blas(self):
        kernel = build_blas_kernel("axpy", KernelConfig(bits=128))
        workload = Workload.from_kernel(kernel)
        assert (workload.kind, workload.operation, workload.bits) == ("blas", "axpy", 128)

    def test_from_kernel_without_metadata_rejected(self):
        from repro.core.ir.builder import KernelBuilder

        builder = KernelBuilder("bare")
        builder.output("z", builder.param("x", 64, 60))
        with pytest.raises(TuningError, match="metadata"):
            Workload.from_kernel(builder.build())

    def test_fingerprint_is_stable_and_workload_sensitive(self):
        first = Workload(kind="ntt", bits=256).fingerprint()
        second = Workload(kind="ntt", bits=256).fingerprint()
        other = Workload(kind="ntt", bits=384).fingerprint()
        assert first == second
        assert first != other

    def test_default_config_is_paper_default(self):
        config = Workload(kind="ntt", bits=768).default_config()
        assert config.multiplication == "schoolbook"
        assert config.word_bits == 64


class TestCandidate:
    def test_kernel_config_keeps_workload_identity(self):
        workload = Workload(kind="ntt", bits=256)
        config = Candidate(multiplication="karatsuba", word_bits=32).kernel_config(workload)
        assert config.bits == 256
        assert config.multiplication == "karatsuba"
        assert config.word_bits == 32

    def test_label_mentions_every_axis(self):
        label = Candidate(batch=64).label()
        assert "schoolbook" in label and "w64" in label and "span1" in label and "batch64" in label


class TestTuningSpace:
    def test_default_candidate_always_in_space(self, rtx4090):
        for workload in (
            Workload(kind="ntt", bits=256, size=4096),
            Workload(kind="blas", bits=128, operation="vadd"),
        ):
            assert default_candidate() in TuningSpace(workload, rtx4090)

    def test_enumeration_is_deterministic(self, rtx4090):
        workload = Workload(kind="ntt", bits=256)
        first = TuningSpace(workload, rtx4090).candidates()
        second = TuningSpace(workload, rtx4090).candidates()
        assert first == second

    def test_word_bits_axis_covers_both_supported_widths(self, rtx4090):
        wide = TuningSpace(Workload(kind="ntt", bits=256), rtx4090)
        assert {candidate.word_bits for candidate in wide} == {32, 64}

    def test_narrow_operands_fall_back_to_32_bit_default(self, rtx4090):
        workload = Workload(kind="blas", bits=32, operation="vadd")
        assert default_candidate(workload).word_bits == 32
        assert workload.default_config().word_bits == 32
        space = TuningSpace(workload, rtx4090)
        assert default_candidate(workload) in space
        assert {candidate.word_bits for candidate in space} == {32}

    def test_sub_word_operands_rejected(self):
        with pytest.raises(TuningError, match="at least 32"):
            Workload(kind="ntt", bits=16)

    def test_blas_space_has_no_stage_spans(self, rtx4090):
        space = TuningSpace(Workload(kind="blas", bits=256, operation="vmul"), rtx4090)
        assert {candidate.stage_span for candidate in space} == {1}

    def test_ntt_space_fuses_stages(self, rtx4090):
        space = TuningSpace(Workload(kind="ntt", bits=256, size=4096), rtx4090)
        assert {candidate.stage_span for candidate in space} == {1, 2, 4}

    def test_stage_span_capped_by_stage_count(self, rtx4090):
        space = TuningSpace(Workload(kind="ntt", bits=256, size=4), rtx4090)
        assert {candidate.stage_span for candidate in space} == {1, 2}

    def test_neighbors_differ_on_one_axis_and_stay_valid(self, rtx4090):
        space = TuningSpace(Workload(kind="ntt", bits=256, size=4096), rtx4090)
        start = default_candidate()
        neighbors = space.neighbors(start)
        assert neighbors
        for neighbor in neighbors:
            assert neighbor in space
            differing = sum(
                getattr(neighbor, axis) != getattr(start, axis)
                for axis in ("multiplication", "word_bits", "stage_span", "batch")
            )
            assert differing == 1
