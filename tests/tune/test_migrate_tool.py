"""`tools/migrate_tuning_db.py` against a real pre-tenant fixture file.

The tool's contract: `--check` flags a pre-tenant file (exit 1), a plain
run makes it self-describing (keys unchanged — the default namespace IS
the legacy format), `--tenant NAME` re-homes records and tombstones with
the `NAME::` prefix, runs are idempotent, and the migrated file loads
through `TuningDatabase` with every record in the right namespace.
"""

import importlib.util
import json
import shutil
from pathlib import Path

import pytest

from repro.tenancy import DEFAULT_TENANT
from repro.tune import TuningDatabase

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "pre_tenant_tuning_db.json"


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "migrate_tuning_db", REPO_ROOT / "tools" / "migrate_tuning_db.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tool():
    return _load_tool()


@pytest.fixture
def db_file(tmp_path):
    target = tmp_path / "tuning.json"
    shutil.copy(FIXTURE, target)
    return target


class TestDefaultNamespaceMigration:
    def test_check_then_migrate_then_check(self, tool, db_file, capsys):
        assert tool.main(["--check", str(db_file)]) == 1
        assert "needs migration" in capsys.readouterr().out
        before_keys = set(json.loads(db_file.read_text())["records"])

        assert tool.main([str(db_file)]) == 0
        assert tool.main(["--check", str(db_file)]) == 0

        document = json.loads(db_file.read_text())
        # Keys unchanged (default namespace is the bare legacy format);
        # records became self-describing.
        assert set(document["records"]) == before_keys
        assert all(
            payload["tenant"] == DEFAULT_TENANT
            for payload in document["records"].values()
        )

    def test_migration_is_idempotent(self, tool, db_file):
        tool.main([str(db_file)])
        first = db_file.read_text()
        assert tool.main([str(db_file)]) == 0
        assert db_file.read_text() == first

    def test_migrated_file_loads_into_the_default_namespace(self, tool, db_file):
        tool.main([str(db_file)])
        db = TuningDatabase(path=db_file)
        records = db.records()
        assert len(records) == 2
        assert all(record.tenant == DEFAULT_TENANT for record in records.values())


class TestReHoming:
    def test_tenant_flag_prefixes_records_and_tombstones(self, tool, db_file):
        assert tool.main(["--tenant", "acme", str(db_file)]) == 0
        document = json.loads(db_file.read_text())
        assert all(key.startswith("acme::") for key in document["records"])
        assert all(key.startswith("acme::") for key in document["dropped"])

        db = TuningDatabase(path=db_file)
        assert all(record.tenant == "acme" for record in db.records().values())

    def test_invalid_tenant_is_refused(self, tool, db_file):
        assert tool.main(["--tenant", "a::b", str(db_file)]) == 2
        # Untouched: still a pre-tenant file.
        assert tool.main(["--check", str(db_file)]) == 1

    def test_corrupt_file_is_reported_and_left_alone(self, tool, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 1, "records": {"k": {"nope": 1}}}))
        before = bad.read_text()
        assert tool.main([str(bad)]) == 2
        assert "NOT migrated" in capsys.readouterr().err
        assert bad.read_text() == before
