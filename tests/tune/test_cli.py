"""Tests for the ``python -m repro.tune`` command-line entry point."""

import pytest

from repro.tune.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["ntt"])
        assert args.bits == 256
        assert args.size == 4096
        assert args.device == "rtx4090"
        assert args.strategy == "auto"

    def test_rejects_unknown_device(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ntt", "--device", "a100"])


class TestMain:
    def test_ntt_tuning_prints_winner_and_cost_table(self, capsys):
        assert main(["ntt", "--size", "4096", "--bits", "256", "--device", "rtx4090"]) == 0
        out = capsys.readouterr().out
        assert "ntt/cooley_tukey/n4096/256b" in out
        assert "winner" in out
        assert "us/NTT" in out
        assert "vs default" in out

    def test_blas_tuning_uses_element_units(self, capsys):
        assert main(["blas", "--op", "vmul", "--bits", "128", "--device", "h100"]) == 0
        out = capsys.readouterr().out
        assert "blas/vmul" in out
        assert "ns/element" in out

    def test_warm_database_run_reports_hit(self, tmp_path, capsys):
        db = str(tmp_path / "tuning.json")
        argv = ["ntt", "--bits", "128", "--size", "1024", "--db", db]
        assert main(argv) == 0
        assert "winner saved to" in capsys.readouterr().out
        assert main(argv) == 0
        assert "warm hit" in capsys.readouterr().out

    def test_invalid_workload_reports_error(self, capsys):
        assert main(["ntt", "--size", "1000"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_top_limits_cost_table(self, capsys):
        assert main(["blas", "--op", "vadd", "--bits", "128", "--top", "3"]) == 0
        out = capsys.readouterr().out
        table = [line for line in out.splitlines() if line.endswith("x")]
        # speedup line + 3 table rows
        assert len([line for line in table if "/w" in line]) == 3
