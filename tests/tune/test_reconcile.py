"""Replica reconciliation: shard databases fold into the primary correctly.

The merge rules under test are the same ones merge-on-save enforces between
concurrent writers: newest record per key wins, tombstones beat records
created at or before them, and a strictly newer re-tune resurrects a key.
"""

import dataclasses

import pytest

from repro.tune import TUNER_VERSION, Candidate, TuningDatabase, TuningRecord, Workload
from repro.tune.reconcile import (
    find_quarantined,
    find_replicas,
    prune_quarantine,
    reconcile_replicas,
    replica_path,
)


def make_record(workload, device="rtx4090", created_at=1700000000.0):
    return TuningRecord(
        fingerprint=workload.fingerprint(),
        workload_key=workload.key,
        device=device,
        tuner_version=TUNER_VERSION,
        candidate=Candidate(multiplication="karatsuba", batch=256),
        score_seconds=1.0e-5,
        baseline_seconds=1.5e-5,
        strategy="exhaustive",
        evaluations=72,
        space_size=72,
        created_at=created_at,
    )


@pytest.fixture
def workloads():
    return (
        Workload(kind="ntt", bits=128, size=16),
        Workload(kind="ntt", bits=256, size=16),
        Workload(kind="blas", bits=128, operation="vmul", elements=1024),
    )


class TestReplicaPaths:
    def test_naming(self, tmp_path):
        primary = tmp_path / "tuning.json"
        assert replica_path(primary, 0) == tmp_path / "tuning.shard0.json"
        assert replica_path(primary, 12) == tmp_path / "tuning.shard12.json"

    def test_discovery_sorted_by_shard_id(self, tmp_path):
        primary = tmp_path / "tuning.json"
        for shard_id in (10, 2, 0):
            replica_path(primary, shard_id).write_text("{}")
        (tmp_path / "tuning.shardX.json").write_text("{}")  # non-numeric: ignored
        (tmp_path / "unrelated.json").write_text("{}")
        assert find_replicas(primary) == (
            replica_path(primary, 0),
            replica_path(primary, 2),
            replica_path(primary, 10),
        )


class TestReconcile:
    def test_disjoint_replicas_union(self, tmp_path, workloads):
        primary = tmp_path / "tuning.json"
        for shard_id, workload in enumerate(workloads[:2]):
            replica = TuningDatabase(replica_path(primary, shard_id))
            replica.store(make_record(workload))
        report = reconcile_replicas(primary)
        assert len(report.replicas) == 2
        assert sum(report.adopted) == 2
        assert report.records == 2
        merged = TuningDatabase(primary)
        for workload in workloads[:2]:
            assert merged.lookup(workload, "rtx4090") is not None

    def test_newest_record_wins_across_replicas(self, tmp_path, workloads):
        primary = tmp_path / "tuning.json"
        workload = workloads[0]
        stale = dataclasses.replace(
            make_record(workload, created_at=100.0), strategy="random"
        )
        fresh = dataclasses.replace(
            make_record(workload, created_at=200.0), strategy="hillclimb"
        )
        TuningDatabase(replica_path(primary, 0)).store(stale)
        TuningDatabase(replica_path(primary, 1)).store(fresh)
        reconcile_replicas(primary)
        record = TuningDatabase(primary).lookup(workload, "rtx4090")
        assert record.strategy == "hillclimb"

    def test_tombstone_beats_older_record(self, tmp_path, workloads):
        primary = tmp_path / "tuning.json"
        workload = workloads[0]
        record = make_record(workload, created_at=100.0)
        TuningDatabase(replica_path(primary, 0)).store(record)
        dropper = TuningDatabase(replica_path(primary, 1))
        dropper.store(record)
        dropper.remove(record.key())  # tombstone stamped now (>> created_at)
        reconcile_replicas(primary)
        assert TuningDatabase(primary).lookup(workload, "rtx4090") is None

    def test_corrupt_replica_skipped_not_fatal(self, tmp_path, workloads):
        primary = tmp_path / "tuning.json"
        TuningDatabase(replica_path(primary, 0)).store(make_record(workloads[0]))
        replica_path(primary, 1).write_text("{torn json")
        report = reconcile_replicas(primary)
        assert report.skipped == (replica_path(primary, 1),)
        assert report.records == 1
        assert "skipped" in report.report()

    def test_explicit_replica_list(self, tmp_path, workloads):
        primary = tmp_path / "tuning.json"
        extra = tmp_path / "elsewhere.json"
        TuningDatabase(extra).store(make_record(workloads[0]))
        report = reconcile_replicas(primary, replicas=[extra])
        assert report.replicas == (extra,)
        assert report.records == 1

    def test_existing_primary_records_survive(self, tmp_path, workloads):
        primary = tmp_path / "tuning.json"
        TuningDatabase(primary).store(make_record(workloads[0]))
        TuningDatabase(replica_path(primary, 0)).store(make_record(workloads[1]))
        report = reconcile_replicas(primary)
        assert report.records == 2


class TestMergeFile:
    def test_merge_file_counts_adoptions(self, tmp_path, workloads):
        source_path = tmp_path / "source.json"
        source = TuningDatabase(source_path)
        for workload in workloads:
            source.store(make_record(workload))
        target = TuningDatabase(tmp_path / "target.json")
        target.store(make_record(workloads[0]))  # identical timestamps: kept
        assert target.merge_file(source_path) == 2
        assert len(target) == 3


class TestQuarantinePruning:
    def make_quarantined(self, primary, shard_id):
        replica = replica_path(primary, shard_id)
        path = replica.with_name(replica.name + ".corrupt")
        path.write_text("{torn json")
        return path

    def test_find_quarantined_only_sees_corrupt_replicas(self, tmp_path):
        primary = tmp_path / "tuning.json"
        quarantined = self.make_quarantined(primary, 0)
        replica_path(primary, 1).write_text("{}")  # a healthy replica
        (tmp_path / "other.json.corrupt").write_text("x")  # a foreign file
        assert find_quarantined(primary) == (quarantined,)
        # Quarantine files are invisible to replica discovery (never merged).
        assert quarantined not in find_replicas(primary)

    def test_prune_drops_only_files_past_the_retention(self, tmp_path):
        import os

        primary = tmp_path / "tuning.json"
        old = self.make_quarantined(primary, 0)
        fresh = self.make_quarantined(primary, 1)
        two_days_ago = 1_700_000_000.0
        os.utime(old, (two_days_ago, two_days_ago))
        now = two_days_ago + 2 * 24 * 3600.0
        os.utime(fresh, (now - 60.0, now - 60.0))

        dropped = prune_quarantine(primary, now=now)
        assert dropped == (old,)
        assert not old.exists()
        assert fresh.exists()

    def test_prune_with_zero_retention_drops_everything(self, tmp_path):
        primary = tmp_path / "tuning.json"
        paths = [self.make_quarantined(primary, shard_id) for shard_id in (0, 1, 5)]
        dropped = prune_quarantine(primary, max_age_s=0.0)
        assert sorted(dropped) == sorted(paths)
        assert find_quarantined(primary) == ()

    def test_prune_on_empty_directory_is_a_no_op(self, tmp_path):
        assert prune_quarantine(tmp_path / "tuning.json") == ()
