"""Tests for Barrett parameters and reduction (Section 3.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.barrett import BarrettParams, barrett_mulmod, barrett_reduce, max_modulus_bits
from repro.errors import ArithmeticDomainError


class TestParams:
    def test_paper_configuration_64bit(self):
        # MBITS = 60 for 64-bit words (Listing 1).
        assert max_modulus_bits(64) == 60

    def test_paper_configuration_128bit(self):
        # MBITS = 124 for 128-bit operands (Listing 4).
        assert max_modulus_bits(128) == 124

    def test_mu_definition(self):
        q = (1 << 60) - 93
        params = BarrettParams.create(q, 64)
        assert params.mu == (1 << (2 * 60 + 3)) // q
        assert params.mu.bit_length() <= 64

    def test_shift_amounts_match_listing1(self):
        q = (1 << 60) - 93
        params = BarrettParams.create(q, 64)
        assert params.pre_shift == 58  # MBITS - 2
        assert params.post_shift == 65  # MBITS + 5

    def test_rejects_modulus_with_wrong_bit_length(self):
        with pytest.raises(ArithmeticDomainError):
            BarrettParams.create((1 << 59) - 1, 64)  # only 59 bits

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            BarrettParams.create(2, 64)

    def test_rejects_word_width_without_headroom(self):
        with pytest.raises(ArithmeticDomainError):
            max_modulus_bits(4)


class TestReduce:
    Q = (1 << 60) - 93
    PARAMS = BarrettParams.create(Q, 64)

    @settings(max_examples=300)
    @given(
        st.integers(min_value=0, max_value=Q - 1),
        st.integers(min_value=0, max_value=Q - 1),
    )
    def test_reduce_matches_mod(self, a, b):
        assert barrett_reduce(a * b, self.PARAMS) == (a * b) % self.Q

    def test_reduce_zero(self):
        assert barrett_reduce(0, self.PARAMS) == 0

    def test_reduce_rejects_negative(self):
        with pytest.raises(ArithmeticDomainError):
            barrett_reduce(-1, self.PARAMS)

    def test_reduce_rejects_product_of_unreduced_operands(self):
        with pytest.raises(ArithmeticDomainError):
            barrett_reduce(self.Q * self.Q, self.PARAMS)

    @settings(max_examples=100)
    @given(st.data())
    def test_many_moduli_single_correction_property(self, data):
        # The single-conditional-subtraction property must hold for any
        # modulus with the top bit set (Section 5.2's k-4 bit moduli).
        bits = data.draw(st.sampled_from([28, 60, 124, 252]))
        q = data.draw(
            st.integers(min_value=(1 << (bits - 1)) + 1, max_value=(1 << bits) - 1)
        )
        word_bits = bits + 4
        params = BarrettParams.create(q, word_bits, bits)
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        assert barrett_mulmod(a, b, params) == (a * b) % q


class TestMulmod:
    def test_rejects_unreduced_operands(self):
        q = (1 << 60) - 93
        params = BarrettParams.create(q, 64)
        with pytest.raises(ArithmeticDomainError):
            barrett_mulmod(q, 1, params)

    @pytest.mark.parametrize("bits", [60, 124, 252, 380, 508, 764, 1020])
    def test_all_paper_bit_widths(self, bits):
        # The evaluation uses moduli of k-4 bits for k in {64,128,256,384,...}.
        q = (1 << bits) - 1
        # Make sure the modulus is odd and has exactly `bits` bits.
        while q % 2 == 0 or q.bit_length() != bits:
            q -= 1
        params = BarrettParams.create(q, bits + 4, bits)
        a, b = q - 3, q // 2 + 1
        assert barrett_mulmod(a, b, params) == (a * b) % q
