"""Tests for the generic limb-level Karatsuba multiplication."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.karatsuba import karatsuba_mul_limbs, karatsuba_threshold_mul
from repro.arith.limbs import int_to_limbs, limbs_to_int
from repro.arith.multiword import mw_mul_schoolbook
from repro.errors import ArithmeticDomainError

W = 64


class TestKaratsubaLimbs:
    @settings(max_examples=100)
    @given(st.data())
    def test_matches_integer_product(self, data):
        k = data.draw(st.integers(min_value=1, max_value=16))
        bits = k * W
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        la, lb = int_to_limbs(a, W, k), int_to_limbs(b, W, k)
        assert limbs_to_int(karatsuba_mul_limbs(la, lb, W), W) == a * b

    @settings(max_examples=50)
    @given(st.data())
    def test_agrees_with_schoolbook(self, data):
        k = data.draw(st.sampled_from([2, 4, 6, 12]))
        bits = k * W
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        la, lb = int_to_limbs(a, W, k), int_to_limbs(b, W, k)
        assert karatsuba_mul_limbs(la, lb, W) == mw_mul_schoolbook(la, lb, W)

    def test_result_limb_count(self):
        la = int_to_limbs((1 << 256) - 1, W, 4)
        assert len(karatsuba_mul_limbs(la, la, W)) == 8

    def test_rejects_length_mismatch(self):
        with pytest.raises(ArithmeticDomainError):
            karatsuba_mul_limbs((1,), (1, 2), W)

    def test_rejects_empty(self):
        with pytest.raises(ArithmeticDomainError):
            karatsuba_mul_limbs((), (), W)


class TestThresholdVariant:
    @settings(max_examples=50)
    @given(st.data())
    def test_threshold_matches_product(self, data):
        k = data.draw(st.sampled_from([2, 4, 8, 12, 16]))
        threshold = data.draw(st.integers(min_value=1, max_value=8))
        bits = k * W
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        la, lb = int_to_limbs(a, W, k), int_to_limbs(b, W, k)
        got = karatsuba_threshold_mul(la, lb, W, threshold_limbs=threshold)
        assert limbs_to_int(got, W) == a * b

    def test_rejects_bad_threshold(self):
        with pytest.raises(ArithmeticDomainError):
            karatsuba_threshold_mul((1,), (1,), W, threshold_limbs=0)
