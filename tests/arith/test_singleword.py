"""Tests for single-word modular arithmetic (Listing 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith import singleword as sw
from repro.arith.barrett import BarrettParams
from repro.errors import ArithmeticDomainError

W = 64
# A 60-bit prime, matching the paper's MBITS = 60 configuration for 64-bit words.
Q60 = (1 << 60) - 93
assert Q60.bit_length() == 60

PARAMS60 = BarrettParams.create(Q60, W, 60)

reduced = st.integers(min_value=0, max_value=Q60 - 1)
words = st.integers(min_value=0, max_value=(1 << W) - 1)


class TestSadd:
    @given(words, words)
    def test_matches_integer_sum(self, a, b):
        hi, lo = sw.sadd(a, b, W)
        assert (hi << W) + lo == a + b

    def test_rejects_oversized(self):
        with pytest.raises(ArithmeticDomainError):
            sw.sadd(1 << W, 0, W)


class TestSaddmod:
    @given(reduced, reduced)
    def test_matches_python_mod(self, a, b):
        assert sw.saddmod(a, b, Q60, W) == (a + b) % Q60

    def test_result_is_canonical_at_wraparound(self):
        # a + b == q must give exactly 0 (the listing's `>` would give q).
        assert sw.saddmod(1, Q60 - 1, Q60, W) == 0

    def test_rejects_unreduced_operand(self):
        with pytest.raises(ArithmeticDomainError):
            sw.saddmod(Q60, 0, Q60, W)

    def test_rejects_zero_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            sw.saddmod(0, 0, 0, W)


class TestSsub:
    @given(words, words)
    def test_wraps_like_c(self, a, b):
        assert sw.ssub(a, b, W) == (a - b) % (1 << W)


class TestSsubmod:
    @given(reduced, reduced)
    def test_matches_python_mod(self, a, b):
        assert sw.ssubmod(a, b, Q60, W) == (a - b) % Q60

    def test_zero_difference(self):
        assert sw.ssubmod(5, 5, Q60, W) == 0

    def test_borrow_case(self):
        assert sw.ssubmod(0, 1, Q60, W) == Q60 - 1


class TestSmul:
    @given(words, words)
    def test_matches_integer_product(self, a, b):
        hi, lo = sw.smul(a, b, W)
        assert (hi << W) + lo == a * b


class TestSmulmod:
    @settings(max_examples=300)
    @given(reduced, reduced)
    def test_matches_python_mod(self, a, b):
        assert sw.smulmod(a, b, PARAMS60) == (a * b) % Q60

    def test_extremes(self):
        assert sw.smulmod(Q60 - 1, Q60 - 1, PARAMS60) == ((Q60 - 1) * (Q60 - 1)) % Q60
        assert sw.smulmod(0, Q60 - 1, PARAMS60) == 0
        assert sw.smulmod(1, Q60 - 1, PARAMS60) == Q60 - 1

    def test_rejects_unreduced(self):
        with pytest.raises(ArithmeticDomainError):
            sw.smulmod(Q60, 1, PARAMS60)

    @given(st.integers(min_value=3, max_value=200))
    def test_many_small_word_widths(self, seed):
        # Exercise the same code path on an abstract 16-bit "word" with a
        # 12-bit modulus, checking every operand pair near the extremes.
        q = 0xFFF1 >> 4  # 12-bit value 0xFFF
        q = 0xFFF
        params = BarrettParams.create(q, 16, 12)
        a = seed % q
        b = (seed * 7919) % q
        assert sw.smulmod(a, b, params) == (a * b) % q
