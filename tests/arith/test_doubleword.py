"""Tests for double-word modular arithmetic (Listings 2-4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith import doubleword as dw
from repro.arith.barrett import BarrettParams
from repro.arith.limbs import int_to_limbs, limbs_to_int
from repro.errors import ArithmeticDomainError

W = 64
DOUBLE_MAX = (1 << (2 * W)) - 1
# 124-bit modulus, the paper's MBITS = 124 configuration (Listing 4).
Q124 = (1 << 124) - 159
assert Q124.bit_length() == 124
PARAMS124 = BarrettParams.create(Q124, 2 * W, 124)
MU124 = PARAMS124.mu


def to_double(value):
    return int_to_limbs(value, W, 2)


def to_quad(value):
    return int_to_limbs(value, W, 4)


def from_limbs(limbs):
    return limbs_to_int(limbs, W)


doubles = st.integers(min_value=0, max_value=DOUBLE_MAX)
reduced = st.integers(min_value=0, max_value=Q124 - 1)


class TestDadd:
    @given(doubles, doubles)
    def test_matches_integer_sum(self, a, b):
        assert from_limbs(dw.dadd(to_double(a), to_double(b), W)) == a + b

    def test_carry_into_third_limb(self):
        result = dw.dadd(to_double(DOUBLE_MAX), to_double(1), W)
        assert result == (0, 1, 0, 0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ArithmeticDomainError):
            dw.dadd((1, 2, 3), (0, 0), W)


class TestDsub:
    @given(doubles, doubles)
    def test_wraps_like_c(self, a, b):
        assert from_limbs(dw.dsub(to_double(a), to_double(b), W)) == (a - b) % (1 << 128)

    def test_borrow_across_limbs(self):
        assert from_limbs(dw.dsub(to_double(1 << 64), to_double(1), W)) == (1 << 64) - 1


class TestComparisons:
    @given(doubles, doubles)
    def test_dlt_dle_deq(self, a, b):
        assert dw.dlt(to_double(a), to_double(b), W) == int(a < b)
        assert dw.dle(to_double(a), to_double(b), W) == int(a <= b)
        assert dw.deq(to_double(a), to_double(b), W) == int(a == b)

    def test_equal_high_limbs(self):
        a, b = (5, 1), (5, 2)
        assert dw.dlt(a, b, W) == 1
        assert dw.dlt(b, a, W) == 0


class TestDaddmod:
    @given(reduced, reduced)
    def test_matches_python_mod(self, a, b):
        got = dw.daddmod(to_double(a), to_double(b), to_double(Q124), W)
        assert from_limbs(got) == (a + b) % Q124

    def test_canonical_at_wraparound(self):
        got = dw.daddmod(to_double(1), to_double(Q124 - 1), to_double(Q124), W)
        assert from_limbs(got) == 0

    def test_rejects_unreduced(self):
        with pytest.raises(ArithmeticDomainError):
            dw.daddmod(to_double(Q124), to_double(0), to_double(Q124), W)


class TestDsubmod:
    @given(reduced, reduced)
    def test_matches_python_mod(self, a, b):
        got = dw.dsubmod(to_double(a), to_double(b), to_double(Q124), W)
        assert from_limbs(got) == (a - b) % Q124


class TestQuadOps:
    quads = st.integers(min_value=0, max_value=(1 << 256) - 1)

    @given(quads, quads)
    def test_qadd_wraps(self, a, b):
        assert from_limbs(dw.qadd(to_quad(a), to_quad(b), W)) == (a + b) % (1 << 256)

    @given(quads, quads)
    def test_qsub_wraps(self, a, b):
        assert from_limbs(dw.qsub(to_quad(a), to_quad(b), W)) == (a - b) % (1 << 256)

    @given(quads, st.integers(min_value=W, max_value=2 * W))
    def test_qshr_keeps_low_double(self, a, amount):
        got = from_limbs(dw.qshr(to_quad(a), amount, W))
        assert got == (a >> amount) % (1 << 128)

    def test_qshr_rejects_out_of_range_shift(self):
        with pytest.raises(ArithmeticDomainError):
            dw.qshr(to_quad(0), W - 1, W)
        with pytest.raises(ArithmeticDomainError):
            dw.qshr(to_quad(0), 2 * W + 1, W)


class TestMultiplication:
    @given(doubles, doubles)
    def test_schoolbook_matches_product(self, a, b):
        assert from_limbs(dw.dmuls(to_double(a), to_double(b), W)) == a * b

    @given(doubles, doubles)
    def test_karatsuba_matches_product(self, a, b):
        assert from_limbs(dw.dmulk(to_double(a), to_double(b), W)) == a * b

    def test_schoolbook_and_karatsuba_agree_on_extremes(self):
        for a in (0, 1, DOUBLE_MAX, 1 << 64, (1 << 64) - 1):
            for b in (0, 1, DOUBLE_MAX, 1 << 127):
                assert dw.dmuls(to_double(a), to_double(b), W) == dw.dmulk(
                    to_double(a), to_double(b), W
                )


class TestDmulmod:
    @settings(max_examples=200)
    @given(reduced, reduced)
    def test_schoolbook_matches_python_mod(self, a, b):
        got = dw.dmulmod(
            to_double(a), to_double(b), to_double(Q124), to_double(MU124), W
        )
        assert from_limbs(got) == (a * b) % Q124

    @settings(max_examples=200)
    @given(reduced, reduced)
    def test_karatsuba_matches_python_mod(self, a, b):
        got = dw.dmulmod(
            to_double(a), to_double(b), to_double(Q124), to_double(MU124), W,
            use_karatsuba=True,
        )
        assert from_limbs(got) == (a * b) % Q124

    def test_extremes(self):
        got = dw.dmulmod(
            to_double(Q124 - 1), to_double(Q124 - 1), to_double(Q124), to_double(MU124), W
        )
        assert from_limbs(got) == pow(Q124 - 1, 2, Q124)

    def test_other_modulus(self):
        q = (1 << 124) - 2143
        assert q.bit_length() == 124
        params = BarrettParams.create(q, 2 * W, 124)
        a, b = q - 12345, q // 3
        got = dw.dmulmod(to_double(a), to_double(b), to_double(q), to_double(params.mu), W)
        assert from_limbs(got) == (a * b) % q
