"""Tests for integer <-> limb conversions (big-endian, Equation 14)."""

import pytest
from hypothesis import given, strategies as st

from repro.arith import limbs
from repro.errors import ArithmeticDomainError

W = 64


class TestLimbCount:
    @pytest.mark.parametrize(
        "bits,width,expected",
        [(64, 64, 1), (65, 64, 2), (128, 64, 2), (384, 64, 6), (768, 64, 12), (1, 64, 1)],
    )
    def test_counts(self, bits, width, expected):
        assert limbs.limb_count(bits, width) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ArithmeticDomainError):
            limbs.limb_count(0, 64)
        with pytest.raises(ArithmeticDomainError):
            limbs.limb_count(64, 0)


class TestRoundTrip:
    def test_paper_decimal_example(self):
        # [8, 9]_10 = 89 from Section 2.2, transposed to base 2**4 for clarity.
        assert limbs.limbs_to_int((8, 9), 4) == 8 * 16 + 9

    def test_big_endian_order(self):
        value = (0xAAAA << 64) | 0xBBBB
        assert limbs.int_to_limbs(value, W, 2) == (0xAAAA, 0xBBBB)

    @given(st.integers(min_value=0, max_value=(1 << 256) - 1))
    def test_round_trip_256(self, value):
        assert limbs.limbs_to_int(limbs.int_to_limbs(value, W, 4), W) == value

    @given(st.integers(min_value=0, max_value=(1 << 384) - 1), st.sampled_from([32, 64]))
    def test_round_trip_varied_width(self, value, width):
        count = limbs.limb_count(384, width)
        assert limbs.limbs_to_int(limbs.int_to_limbs(value, width, count), width) == value

    def test_overflow_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            limbs.int_to_limbs(1 << 128, W, 2)

    def test_negative_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            limbs.int_to_limbs(-1, W, 2)

    def test_empty_limbs_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            limbs.limbs_to_int((), W)

    def test_oversized_limb_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            limbs.limbs_to_int((1 << 64, 0), W)


class TestStructuralHelpers:
    def test_pad_limbs_prepends_zeros(self):
        # Equation 35/36: 753-bit value in 64-bit words padded to 16 words.
        assert limbs.pad_limbs((1, 2, 3), 5) == (0, 0, 1, 2, 3)

    def test_pad_limbs_rejects_shrink(self):
        with pytest.raises(ArithmeticDomainError):
            limbs.pad_limbs((1, 2, 3), 2)

    def test_strip_leading_zeros(self):
        assert limbs.strip_leading_zero_limbs((0, 0, 5, 0)) == (5, 0)

    def test_strip_all_zeros_keeps_one(self):
        assert limbs.strip_leading_zero_limbs((0, 0, 0)) == (0,)

    def test_split_and_join(self):
        hi, lo = limbs.split_limb((7 << 64) | 9, W)
        assert (hi, lo) == (7, 9)
        assert limbs.join_limbs(hi, lo, W) == (7 << 64) | 9

    def test_split_rejects_oversized(self):
        with pytest.raises(ArithmeticDomainError):
            limbs.split_limb(1 << 128, W)

    def test_normalize(self):
        assert limbs.normalize_limbs((1 << 64, 5), W) == (0, 5)


class TestComparisons:
    @given(
        st.integers(min_value=0, max_value=(1 << 192) - 1),
        st.integers(min_value=0, max_value=(1 << 192) - 1),
    )
    def test_limbs_lt_eq_match_integers(self, a, b):
        la = limbs.int_to_limbs(a, W, 3)
        lb = limbs.int_to_limbs(b, W, 3)
        assert limbs.limbs_lt(la, lb) == int(a < b)
        assert limbs.limbs_eq(la, lb) == int(a == b)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            limbs.limbs_lt((1,), (1, 2))
        with pytest.raises(ArithmeticDomainError):
            limbs.limbs_eq((1,), (1, 2))
