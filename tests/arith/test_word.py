"""Unit and property tests for the machine-word primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.arith import word
from repro.errors import ArithmeticDomainError

WORD_BITS = 64
WORD_MAX = (1 << WORD_BITS) - 1

words = st.integers(min_value=0, max_value=WORD_MAX)


class TestMask:
    def test_mask_64(self):
        assert word.mask(64) == 0xFFFFFFFFFFFFFFFF

    def test_mask_1(self):
        assert word.mask(1) == 1

    def test_mask_rejects_non_positive(self):
        with pytest.raises(ArithmeticDomainError):
            word.mask(0)


class TestCheckWord:
    def test_accepts_in_range(self):
        assert word.check_word(WORD_MAX, WORD_BITS) == WORD_MAX

    def test_rejects_negative(self):
        with pytest.raises(ArithmeticDomainError):
            word.check_word(-1, WORD_BITS)

    def test_rejects_too_wide(self):
        with pytest.raises(ArithmeticDomainError):
            word.check_word(1 << WORD_BITS, WORD_BITS)

    def test_rejects_non_int(self):
        with pytest.raises(ArithmeticDomainError):
            word.check_word(1.5, WORD_BITS)


class TestAddition:
    def test_add_wide_no_carry(self):
        assert word.add_wide(1, 2, WORD_BITS) == (0, 3)

    def test_add_wide_carry(self):
        assert word.add_wide(WORD_MAX, 1, WORD_BITS) == (1, 0)

    def test_add_with_carry_chains(self):
        assert word.add_with_carry(WORD_MAX, WORD_MAX, 1, WORD_BITS) == (1, WORD_MAX)

    @given(words, words)
    def test_add_wide_reconstructs(self, a, b):
        carry, lo = word.add_wide(a, b, WORD_BITS)
        assert carry * (1 << WORD_BITS) + lo == a + b
        assert carry in (0, 1)


class TestSubtraction:
    def test_sub_no_borrow(self):
        assert word.sub_with_borrow(5, 3, 0, WORD_BITS) == (0, 2)

    def test_sub_borrow(self):
        borrow, diff = word.sub_with_borrow(3, 5, 0, WORD_BITS)
        assert borrow == 1
        assert diff == (3 - 5) % (1 << WORD_BITS)

    @given(words, words, st.integers(min_value=0, max_value=1))
    def test_sub_with_borrow_reconstructs(self, a, b, borrow_in):
        borrow, diff = word.sub_with_borrow(a, b, borrow_in, WORD_BITS)
        assert diff - borrow * (1 << WORD_BITS) == a - b - borrow_in


class TestMultiplication:
    def test_mul_wide_small(self):
        assert word.mul_wide(3, 4, WORD_BITS) == (0, 12)

    def test_mul_wide_max(self):
        hi, lo = word.mul_wide(WORD_MAX, WORD_MAX, WORD_BITS)
        assert (hi << WORD_BITS) | lo == WORD_MAX * WORD_MAX

    @given(words, words)
    def test_mul_wide_reconstructs(self, a, b):
        hi, lo = word.mul_wide(a, b, WORD_BITS)
        assert (hi << WORD_BITS) + lo == a * b

    @given(words, words)
    def test_mul_lo_hi_consistent(self, a, b):
        assert word.mul_lo(a, b, WORD_BITS) == (a * b) & WORD_MAX
        assert word.mul_hi(a, b, WORD_BITS) == (a * b) >> WORD_BITS


class TestShifts:
    def test_shr_basic(self):
        assert word.shr(0b1000, 3, WORD_BITS) == 1

    def test_shl_discards_high_bits(self):
        assert word.shl(WORD_MAX, 1, WORD_BITS) == WORD_MAX - 1

    def test_shift_by_width_is_zero(self):
        assert word.shr(123, WORD_BITS, WORD_BITS) == 0
        assert word.shl(123, WORD_BITS, WORD_BITS) == 0

    def test_negative_shift_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            word.shr(1, -1, WORD_BITS)
        with pytest.raises(ArithmeticDomainError):
            word.shl(1, -1, WORD_BITS)

    @given(words, st.integers(min_value=0, max_value=63))
    def test_shr_matches_python(self, a, k):
        assert word.shr(a, k, WORD_BITS) == a >> k


class TestComparisonsAndSelect:
    @given(words, words)
    def test_lt_le_eq(self, a, b):
        assert word.lt(a, b) == int(a < b)
        assert word.le(a, b) == int(a <= b)
        assert word.eq(a, b) == int(a == b)

    def test_select(self):
        assert word.select(1, 10, 20) == 10
        assert word.select(0, 10, 20) == 20


class TestBitwise:
    @given(words, words)
    def test_bitwise_match_python(self, a, b):
        assert word.bit_or(a, b, WORD_BITS) == a | b
        assert word.bit_and(a, b, WORD_BITS) == a & b
        assert word.bit_xor(a, b, WORD_BITS) == a ^ b

    @given(words)
    def test_not_is_involution(self, a):
        assert word.bit_not(word.bit_not(a, WORD_BITS), WORD_BITS) == a
