"""Tests for the recursive MoMA context and the flat k-limb helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.barrett import BarrettParams
from repro.arith.limbs import int_to_limbs, limbs_to_int
from repro.arith.multiword import (
    MoMAContext,
    mw_add,
    mw_addmod,
    mw_eq,
    mw_lt,
    mw_mul_schoolbook,
    mw_mulmod_barrett,
    mw_sub,
    mw_submod,
)
from repro.errors import ArithmeticDomainError

W = 64


def make_modulus(bits):
    """Return an odd modulus with exactly `bits` bits (top bit set)."""
    q = (1 << bits) - 1
    while q.bit_length() != bits or q % 2 == 0:
        q -= 2
    return q


class TestContextConstruction:
    def test_rejects_non_power_of_two_multiple(self):
        with pytest.raises(ArithmeticDomainError):
            MoMAContext(192, W)

    def test_rejects_width_below_word(self):
        with pytest.raises(ArithmeticDomainError):
            MoMAContext(32, W)

    def test_rejects_unknown_multiplication(self):
        with pytest.raises(ArithmeticDomainError):
            MoMAContext(128, W, multiplication="toom-cook")

    @pytest.mark.parametrize("bits,words", [(64, 1), (128, 2), (256, 4), (512, 8), (1024, 16)])
    def test_num_words(self, bits, words):
        assert MoMAContext(bits, W).num_words == words

    def test_recursion_depth_example_from_paper(self):
        # Section 3.2: a 512-bit integer on 64-bit words needs 3 recursion steps.
        ctx = MoMAContext(512, W)
        depth = 0
        node = ctx
        while node._child is not None:
            depth += 1
            node = node._child
        assert depth == 3


class TestPrimitives:
    @settings(max_examples=100)
    @given(st.data())
    def test_add_wide(self, data):
        bits = data.draw(st.sampled_from([64, 128, 256, 512]))
        ctx = MoMAContext(bits, W)
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        carry, value = ctx.add_wide(a, b)
        assert carry * (1 << bits) + value == a + b

    @settings(max_examples=100)
    @given(st.data())
    def test_sub_with_borrow(self, data):
        bits = data.draw(st.sampled_from([64, 128, 256, 512]))
        ctx = MoMAContext(bits, W)
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        borrow, value = ctx.sub_with_borrow(a, b, 0)
        assert value - borrow * (1 << bits) == a - b

    @settings(max_examples=100)
    @given(st.data())
    def test_comparisons(self, data):
        bits = data.draw(st.sampled_from([128, 256]))
        ctx = MoMAContext(bits, W)
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        assert ctx.lt(a, b) == int(a < b)
        assert ctx.eq(a, b) == int(a == b)
        assert ctx.eq(a, a) == 1

    @settings(max_examples=100)
    @given(st.data())
    def test_mul_wide_schoolbook(self, data):
        bits = data.draw(st.sampled_from([64, 128, 256, 512]))
        ctx = MoMAContext(bits, W, multiplication="schoolbook")
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        hi, lo = ctx.mul_wide(a, b)
        assert (hi << bits) + lo == a * b

    @settings(max_examples=100)
    @given(st.data())
    def test_mul_wide_karatsuba(self, data):
        bits = data.draw(st.sampled_from([128, 256, 512]))
        ctx = MoMAContext(bits, W, multiplication="karatsuba")
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        hi, lo = ctx.mul_wide(a, b)
        assert (hi << bits) + lo == a * b

    def test_rejects_oversized_operand(self):
        ctx = MoMAContext(128, W)
        with pytest.raises(ArithmeticDomainError):
            ctx.add_wide(1 << 128, 0)


class TestModularOps:
    @settings(max_examples=60)
    @given(st.data())
    def test_addmod_submod_mulmod(self, data):
        bits = data.draw(st.sampled_from([128, 256, 512, 1024]))
        q = make_modulus(bits - 4)
        ctx = MoMAContext(bits, W)
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        assert ctx.addmod(a, b, q) == (a + b) % q
        assert ctx.submod(a, b, q) == (a - b) % q
        assert ctx.mulmod(a, b, q) == (a * b) % q

    def test_mulmod_karatsuba_agrees(self):
        bits = 256
        q = make_modulus(bits - 4)
        school = MoMAContext(bits, W, multiplication="schoolbook")
        karat = MoMAContext(bits, W, multiplication="karatsuba")
        a, b = q - 12345, q // 7
        assert school.mulmod(a, b, q) == karat.mulmod(a, b, q) == (a * b) % q

    def test_mulmod_accepts_precomputed_mu(self):
        bits = 128
        q = make_modulus(bits - 4)
        params = BarrettParams.create(q, bits, bits - 4)
        ctx = MoMAContext(bits, W)
        assert ctx.mulmod(q - 1, q - 2, q, params.mu) == ((q - 1) * (q - 2)) % q

    def test_mulmod_rejects_wrong_modulus_width(self):
        ctx = MoMAContext(128, W)
        with pytest.raises(ArithmeticDomainError):
            ctx.mulmod(1, 2, (1 << 100) - 1)

    def test_rejects_unreduced_operands(self):
        bits = 128
        q = make_modulus(bits - 4)
        ctx = MoMAContext(bits, W)
        with pytest.raises(ArithmeticDomainError):
            ctx.addmod(q, 0, q)


class TestOperationCounting:
    def test_counts_machine_word_multiplications(self):
        q = make_modulus(124)
        school = MoMAContext(128, W, multiplication="schoolbook", count_ops=True)
        karat = MoMAContext(128, W, multiplication="karatsuba", count_ops=True)
        school.mulmod(q - 1, q - 3, q)
        karat.mulmod(q - 1, q - 3, q)
        # Karatsuba trades multiplications for additions (Section 5.4).
        assert karat.op_counts["mul"] < school.op_counts["mul"]
        assert karat.op_counts["add"] + karat.op_counts["sub"] >= school.op_counts[
            "add"
        ] + school.op_counts["sub"]

    def test_reset(self):
        ctx = MoMAContext(128, W, count_ops=True)
        ctx.add_wide(1, 2)
        assert sum(ctx.op_counts.values()) > 0
        ctx.reset_op_counts()
        assert sum(ctx.op_counts.values()) == 0

    def test_deeper_recursion_costs_more(self):
        q256 = make_modulus(252)
        q512 = make_modulus(508)
        ctx256 = MoMAContext(256, W, count_ops=True)
        ctx512 = MoMAContext(512, W, count_ops=True)
        ctx256.mulmod(q256 - 1, q256 - 2, q256)
        ctx512.mulmod(q512 - 1, q512 - 2, q512)
        assert sum(ctx512.op_counts.values()) > sum(ctx256.op_counts.values())


class TestFlatLimbHelpers:
    @settings(max_examples=100)
    @given(st.data())
    def test_mw_add_sub(self, data):
        k = data.draw(st.integers(min_value=1, max_value=8))
        bits = k * W
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        la, lb = int_to_limbs(a, W, k), int_to_limbs(b, W, k)
        assert limbs_to_int(mw_add(la, lb, W), W) == a + b
        borrow, diff = mw_sub(la, lb, W)
        assert limbs_to_int(diff, W) - borrow * (1 << bits) == a - b

    @settings(max_examples=100)
    @given(st.data())
    def test_mw_mul_schoolbook(self, data):
        k = data.draw(st.integers(min_value=1, max_value=6))
        bits = k * W
        a = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        la, lb = int_to_limbs(a, W, k), int_to_limbs(b, W, k)
        assert limbs_to_int(mw_mul_schoolbook(la, lb, W), W) == a * b

    @settings(max_examples=60)
    @given(st.data())
    def test_mw_modular_helpers(self, data):
        k = data.draw(st.sampled_from([2, 4, 6]))
        bits = k * W
        q = make_modulus(bits - 4)
        lq = int_to_limbs(q, W, k)
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        la, lb = int_to_limbs(a, W, k), int_to_limbs(b, W, k)
        assert limbs_to_int(mw_addmod(la, lb, lq, W), W) == (a + b) % q
        assert limbs_to_int(mw_submod(la, lb, lq, W), W) == (a - b) % q
        params = BarrettParams.create(q, bits, bits - 4)
        assert limbs_to_int(mw_mulmod_barrett(la, lb, params, W), W) == (a * b) % q

    def test_mw_comparisons(self):
        assert mw_lt((0, 5), (0, 6)) == 1
        assert mw_lt((1, 0), (0, 6)) == 0
        assert mw_eq((1, 2), (1, 2)) == 1
        assert mw_eq((1, 2), (2, 1)) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            mw_add((1,), (1, 2), W)
        with pytest.raises(ArithmeticDomainError):
            mw_mulmod_barrett(
                (1,), (1,), BarrettParams.create(make_modulus(124), 128, 124), W
            )
