"""Tests for Montgomery multiplication (the full-bit-width modulus path)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.limbs import int_to_limbs, limbs_to_int
from repro.arith.montgomery import MontgomeryParams, montgomery_mulmod_limbs
from repro.errors import ArithmeticDomainError

W = 64
# Full 128-bit prime modulus: Montgomery supports the full word width,
# unlike the Barrett path which needs 4 bits of headroom.
Q128 = (1 << 128) - 159
assert Q128.bit_length() == 128


class TestParams:
    def test_rejects_even_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            MontgomeryParams.create(1 << 64, W)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ArithmeticDomainError):
            MontgomeryParams.create(1, W)

    def test_n_prime_property(self):
        params = MontgomeryParams.create(Q128, W)
        assert (params.n_prime * Q128) % (1 << W) == (1 << W) - 1  # -1 mod 2^64

    def test_limb_count(self):
        params = MontgomeryParams.create(Q128, W)
        assert params.num_limbs == 2
        assert params.r_bits == 128

    def test_rejects_too_few_limbs(self):
        with pytest.raises(ArithmeticDomainError):
            MontgomeryParams.create(Q128, W, num_limbs=1)


class TestConversion:
    params = MontgomeryParams.create(Q128, W)

    @given(st.integers(min_value=0, max_value=Q128 - 1))
    def test_round_trip(self, value):
        mont = self.params.to_montgomery(value)
        assert self.params.from_montgomery(mont) == value

    def test_rejects_unreduced(self):
        with pytest.raises(ArithmeticDomainError):
            self.params.to_montgomery(Q128)


class TestWholeIntegerMulmod:
    params = MontgomeryParams.create(Q128, W)

    @settings(max_examples=200)
    @given(
        st.integers(min_value=0, max_value=Q128 - 1),
        st.integers(min_value=0, max_value=Q128 - 1),
    )
    def test_matches_python_mod(self, a, b):
        am = self.params.to_montgomery(a)
        bm = self.params.to_montgomery(b)
        got = self.params.from_montgomery(self.params.mulmod(am, bm))
        assert got == (a * b) % Q128


class TestCIOSLimbs:
    @settings(max_examples=150)
    @given(
        st.integers(min_value=0, max_value=Q128 - 1),
        st.integers(min_value=0, max_value=Q128 - 1),
    )
    def test_cios_matches_whole_integer(self, a, b):
        params = MontgomeryParams.create(Q128, W)
        am = params.to_montgomery(a)
        bm = params.to_montgomery(b)
        got_limbs = montgomery_mulmod_limbs(
            int_to_limbs(am, W, params.num_limbs),
            int_to_limbs(bm, W, params.num_limbs),
            params,
        )
        got = params.from_montgomery(limbs_to_int(got_limbs, W))
        assert got == (a * b) % Q128

    @pytest.mark.parametrize("bits", [64, 128, 256, 384])
    def test_various_widths(self, bits):
        q = (1 << bits) - 1
        while q % 2 == 0 or q.bit_length() != bits or q % 5 == 0:
            q -= 2
        params = MontgomeryParams.create(q, W)
        a, b = q - 7, (q * 2) // 3
        am, bm = params.to_montgomery(a), params.to_montgomery(b)
        got_limbs = montgomery_mulmod_limbs(
            int_to_limbs(am, W, params.num_limbs),
            int_to_limbs(bm, W, params.num_limbs),
            params,
        )
        assert params.from_montgomery(limbs_to_int(got_limbs, W)) == (a * b) % q

    def test_rejects_wrong_limb_count(self):
        params = MontgomeryParams.create(Q128, W)
        with pytest.raises(ArithmeticDomainError):
            montgomery_mulmod_limbs((1,), (2,), params)
