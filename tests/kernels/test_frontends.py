"""Tests for the BLAS and NTT kernel frontends."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.kernels import (
    BLAS_OPERATIONS,
    KernelConfig,
    build_blas_kernel,
    build_butterfly_kernel,
    compile_blas_kernel,
    compile_butterfly_kernel,
    generate_blas_kernel,
    generate_butterfly_kernel,
    padded_width,
)
from repro.core.rewrite.legalize import kernel_is_machine_legal
from repro.ntheory import find_ntt_prime


def barrett_mu(q, modulus_bits):
    return (1 << (2 * modulus_bits + 3)) // q


class TestKernelConfig:
    def test_defaults(self):
        config = KernelConfig(bits=256)
        assert config.effective_modulus_bits == 252
        assert config.container_bits == 256
        assert config.operand_words == 4
        assert not config.is_single_word

    @pytest.mark.parametrize(
        "bits,container", [(128, 128), (384, 512), (768, 1024), (320, 512), (64, 64)]
    )
    def test_padding(self, bits, container):
        assert KernelConfig(bits=bits).container_bits == container
        assert padded_width(bits, 64) == container

    def test_single_word(self):
        assert KernelConfig(bits=64).is_single_word

    def test_invalid_configs(self):
        with pytest.raises(KernelError):
            KernelConfig(bits=32)  # below the word width
        with pytest.raises(KernelError):
            KernelConfig(bits=128, modulus_bits=126)  # not enough headroom
        with pytest.raises(KernelError):
            KernelConfig(bits=128, multiplication="fft")
        with pytest.raises(KernelError):
            padded_width(0, 64)

    @pytest.mark.parametrize("word_bits", [0, -64, 48, 63, 96])
    def test_non_power_of_two_word_width_rejected(self, word_bits):
        # A 48-bit "word" would build a container the legalizer cannot split
        # evenly into machine words; padded_width must reject it up front.
        with pytest.raises(KernelError, match="power of two"):
            padded_width(256, word_bits)
        with pytest.raises(KernelError, match="power of two"):
            KernelConfig(bits=256, word_bits=word_bits)

    def test_power_of_two_word_widths_accepted(self):
        assert padded_width(256, 32) == 256
        assert KernelConfig(bits=256, word_bits=32).operand_words == 8

    def test_label(self):
        assert KernelConfig(bits=384).label() == "384b_schoolbook"


class TestBlasFrontend:
    def test_unknown_operation_rejected(self):
        with pytest.raises(KernelError):
            build_blas_kernel("dot", KernelConfig(bits=128))

    @pytest.mark.parametrize("operation", BLAS_OPERATIONS)
    def test_kernels_are_legalized(self, operation):
        config = KernelConfig(bits=128)
        kernel = generate_blas_kernel(operation, config)
        assert kernel_is_machine_legal(kernel, 64)
        assert kernel.metadata["family"] == "blas"
        assert kernel.metadata["operation"] == operation

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_vadd_vsub_vmul_semantics(self, data):
        config = KernelConfig(bits=128)
        q = find_ntt_prime(124, 64)
        mu = barrett_mu(q, 124)
        x = data.draw(st.integers(min_value=0, max_value=q - 1))
        y = data.draw(st.integers(min_value=0, max_value=q - 1))
        assert compile_blas_kernel("vadd", config)(x=x, y=y, q=q)["z"] == (x + y) % q
        assert compile_blas_kernel("vsub", config)(x=x, y=y, q=q)["z"] == (x - y) % q
        assert compile_blas_kernel("vmul", config)(x=x, y=y, q=q, mu=mu)["z"] == (x * y) % q

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_axpy_semantics(self, data):
        config = KernelConfig(bits=256)
        q = find_ntt_prime(252, 64)
        mu = barrett_mu(q, 252)
        x = data.draw(st.integers(min_value=0, max_value=q - 1))
        y = data.draw(st.integers(min_value=0, max_value=q - 1))
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        result = compile_blas_kernel("axpy", config)(x=x, y=y, a=a, q=q, mu=mu)["z"]
        assert result == (a * x + y) % q

    def test_non_power_of_two_width(self):
        config = KernelConfig(bits=384)
        q = find_ntt_prime(380, 64)
        mu = barrett_mu(q, 380)
        kernel = compile_blas_kernel("vmul", config)
        x, y = q - 3, q // 5
        assert kernel(x=x, y=y, q=q, mu=mu)["z"] == (x * y) % q
        # Pruning: 384-bit operands need 6 words, not the container's 8.
        assert len(kernel.kernel.metadata["param_layout"]["x"]) == 8
        assert sum(1 for limb in kernel.kernel.metadata["param_layout"]["x"] if limb) == 6

    def test_uniform_params_recorded(self):
        kernel = generate_blas_kernel("axpy", KernelConfig(bits=128))
        assert set(kernel.metadata["uniform_params"]) == {"a", "q", "mu"}


class TestButterflyFrontend:
    def test_unknown_variant_rejected(self):
        with pytest.raises(KernelError):
            build_butterfly_kernel(KernelConfig(bits=128), "stockham")

    @pytest.mark.parametrize("variant", ["cooley_tukey", "gentleman_sande"])
    def test_kernels_are_legalized(self, variant):
        kernel = generate_butterfly_kernel(KernelConfig(bits=128), variant)
        assert kernel_is_machine_legal(kernel, 64)
        assert kernel.metadata["variant"] == variant

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_cooley_tukey_semantics(self, data):
        config = KernelConfig(bits=256)
        q = find_ntt_prime(252, 128)
        mu = barrett_mu(q, 252)
        x = data.draw(st.integers(min_value=0, max_value=q - 1))
        y = data.draw(st.integers(min_value=0, max_value=q - 1))
        w = data.draw(st.integers(min_value=0, max_value=q - 1))
        out = compile_butterfly_kernel(config)(x=x, y=y, w=w, q=q, mu=mu)
        assert out["x_out"] == (x + w * y) % q
        assert out["y_out"] == (x - w * y) % q

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_gentleman_sande_semantics(self, data):
        config = KernelConfig(bits=128)
        q = find_ntt_prime(124, 128)
        mu = barrett_mu(q, 124)
        x = data.draw(st.integers(min_value=0, max_value=q - 1))
        y = data.draw(st.integers(min_value=0, max_value=q - 1))
        w = data.draw(st.integers(min_value=0, max_value=q - 1))
        out = compile_butterfly_kernel(config, "gentleman_sande")(x=x, y=y, w=w, q=q, mu=mu)
        assert out["x_out"] == (x + y) % q
        assert out["y_out"] == ((x - y) * w) % q

    def test_karatsuba_configuration(self):
        config = KernelConfig(bits=256, multiplication="karatsuba")
        q = find_ntt_prime(252, 64)
        mu = barrett_mu(q, 252)
        out = compile_butterfly_kernel(config)(x=1, y=2, w=3, q=q, mu=mu)
        assert out["x_out"] == 7
        assert out["y_out"] == (1 - 6) % q

    def test_butterfly_inverse_round_trip(self):
        # Applying the butterfly and then undoing it recovers the inputs:
        # x = (x' + y') / 2, w*y = (x' - y') / 2.
        config = KernelConfig(bits=128)
        q = find_ntt_prime(124, 64)
        mu = barrett_mu(q, 124)
        kernel = compile_butterfly_kernel(config)
        x, y, w = 123456789, 987654321, 555555
        out = kernel(x=x, y=y, w=w, q=q, mu=mu)
        inv2 = pow(2, -1, q)
        assert (out["x_out"] + out["y_out"]) * inv2 % q == x
        assert (out["x_out"] - out["y_out"]) * inv2 % q == (w * y) % q
