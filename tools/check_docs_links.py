#!/usr/bin/env python3
"""Check that every relative Markdown link in docs/ and README.md resolves.

CI runs this (the "docs" job) so the documentation tree cannot rot: a moved
file, a renamed heading, or a typo'd path fails the build.  Checked per
link:

* the target file (or directory) exists, relative to the linking file;
* a ``#fragment`` on a Markdown target matches a real heading in that file,
  using GitHub's anchor slugification (lowercase; punctuation dropped;
  spaces become hyphens);
* bare in-page fragments (``#section``) match a heading in the same file.

External links (``http(s)://``, ``mailto:``) are out of scope — this guard
is about keeping the repo self-consistent, not the internet reachable.

Usage::

    python tools/check_docs_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub's heading→anchor rule, closely enough for our docs."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(match.group(1)) for match in _HEADING.finditer(text)}


def links_of(path: Path) -> list[str]:
    text = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return [match.group(1) for match in _LINK.finditer(text)]


def check_file(path: Path, root: Path) -> list[str]:
    problems: list[str] = []
    for target in links_of(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw_path, _, fragment = target.partition("#")
        if raw_path:
            resolved = (path.parent / raw_path).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(root)}: broken link -> {target}")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into non-markdown targets are not checked
            if slugify(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{path.relative_to(root)}: missing anchor -> {target}"
                )
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    sources = [
        candidate
        for candidate in [root / "README.md", *sorted((root / "docs").glob("**/*.md"))]
        if candidate.exists()
    ]
    if not sources:
        print("check_docs_links: nothing to check (no README.md or docs/)")
        return 1
    problems: list[str] = []
    checked_links = 0
    for source in sources:
        checked_links += len(
            [t for t in links_of(source) if not t.startswith(("http://", "https://"))]
        )
        problems.extend(check_file(source, root))
    if problems:
        print("\n".join(problems))
        print(f"check_docs_links: {len(problems)} broken link(s)")
        return 1
    print(
        f"check_docs_links: {len(sources)} file(s), "
        f"{checked_links} relative link(s), all resolve"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
