#!/usr/bin/env python3
"""Validate a Chrome trace-event export and print a per-layer breakdown.

Loads a trace written by ``python -m repro.serve --trace out.json`` (or
``repro.obs.export.write_chrome_trace``), validates it structurally via
:func:`repro.obs.export.spans_from_chrome_trace`, and prints:

* trace/span counts and the distinct shard ids that contributed spans;
* wall time per category (serve / wire / compile / ...) — where a cluster
  request actually spends its time;
* the top span names by total duration.

CI runs this after a two-shard TCP smoke to assert the merged trace is
well-formed and both shards contributed (``--expect-shards 2``).  Exits
nonzero on an invalid document or a violated expectation.

Usage::

    python tools/trace_summary.py out.json [--expect-shards N] [--top K]
"""

from __future__ import annotations

import argparse
import collections
import json
import sys
from pathlib import Path

# Runnable straight from a checkout: put src/ on the path when the package
# is not already importable (CI invokes this without PYTHONPATH).
try:
    from repro.obs.export import spans_from_chrome_trace
except ImportError:  # pragma: no cover - checkout-layout fallback
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs.export import spans_from_chrome_trace


def summarize(spans, top: int) -> str:
    lines = []
    traces = collections.Counter(one.trace_id for one in spans)
    shards = sorted(
        {one.args["shard_id"] for one in spans if "shard_id" in one.args}
    )
    processes = sorted({one.process_id for one in spans})
    lines.append(
        f"traces      {len(traces)} ({len(spans)} spans, "
        f"{len(processes)} processes, shards seen: "
        f"{', '.join(map(str, shards)) if shards else 'none'})"
    )

    by_cat = collections.defaultdict(float)
    for one in spans:
        by_cat[one.cat or "span"] += one.dur_us
    total_us = sum(by_cat.values()) or 1.0
    lines.append("per-layer time (sum of span durations):")
    for cat, dur_us in sorted(by_cat.items(), key=lambda kv: -kv[1]):
        lines.append(
            f"  {cat:<10} {dur_us / 1e3:>10.3f} ms  {dur_us / total_us:>6.1%}"
        )

    by_name = collections.defaultdict(lambda: [0, 0.0])
    for one in spans:
        entry = by_name[one.name]
        entry[0] += 1
        entry[1] += one.dur_us
    lines.append(f"top spans by total duration (of {len(by_name)} names):")
    ranked = sorted(by_name.items(), key=lambda kv: -kv[1][1])[:top]
    for name, (count, dur_us) in ranked:
        lines.append(
            f"  {name:<34} x{count:<4} {dur_us / 1e3:>10.3f} ms total, "
            f"{dur_us / count / 1e3:>8.3f} ms avg"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate a repro Chrome trace-event export and print "
        "a per-layer time breakdown"
    )
    parser.add_argument("trace", metavar="PATH", help="trace-event JSON file")
    parser.add_argument(
        "--expect-shards",
        type=int,
        default=None,
        metavar="N",
        help="fail unless spans from at least N distinct shard ids appear",
    )
    parser.add_argument(
        "--top", type=int, default=12, help="span names to rank (default 12)"
    )
    args = parser.parse_args(argv)

    try:
        payload = json.loads(Path(args.trace).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"trace_summary: cannot load {args.trace}: {error}", file=sys.stderr)
        return 1
    try:
        spans = spans_from_chrome_trace(payload)
    except ValueError as error:
        print(f"trace_summary: invalid trace document: {error}", file=sys.stderr)
        return 1
    if not spans:
        print("trace_summary: document is valid but contains no spans",
              file=sys.stderr)
        return 1

    print(summarize(spans, args.top))

    if args.expect_shards is not None:
        shards = {one.args["shard_id"] for one in spans if "shard_id" in one.args}
        if len(shards) < args.expect_shards:
            print(
                f"trace_summary: expected spans from >= {args.expect_shards} "
                f"shards, saw {sorted(shards)}",
                file=sys.stderr,
            )
            return 1
        roots = [one for one in spans if not one.parent_id]
        multi = [
            trace_id
            for trace_id, count in collections.Counter(
                one.trace_id for one in roots
            ).items()
            if count > 1
        ]
        if multi:
            print(
                f"trace_summary: traces with multiple roots: {multi}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
