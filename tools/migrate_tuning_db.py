#!/usr/bin/env python3
"""Migrate pre-tenant tuning database files into tenant namespaces.

Pre-tenant database files keep working without this tool: the shared
``default`` namespace *is* the legacy key format, so every old record
already lands exactly where untenanted lookups search.  What old files
lack is the explicit per-record ``tenant`` field that makes them
self-describing; this tool adds it (``"default"`` unless ``--tenant``
re-homes the records into a named namespace, rewriting their keys with
the ``tenant::`` prefix) and rewrites the file atomically.

Usage::

    # make a pre-tenant file self-describing (records stay in the shared
    # default namespace; keys are unchanged)
    python tools/migrate_tuning_db.py tuning_db.json

    # re-home every record into tenant "acme" (keys gain the acme:: prefix)
    python tools/migrate_tuning_db.py --tenant acme tuning_db.json

    # CI guard: exit 1 if any named file still needs migrating
    python tools/migrate_tuning_db.py --check tuning_db.json replicas/*.json

Replica files written by shard processes use the same schema, so the same
invocation migrates them.  The rewrite is read-validate-replace: a file
that fails record validation is reported and left untouched.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.errors import TuningError  # noqa: E402
from repro.tenancy import DEFAULT_TENANT, qualify_key, validate_tenant  # noqa: E402
from repro.tune.db import _SCHEMA_VERSION, TuningDatabase  # noqa: E402


def migrate_file(path: Path, tenant: str, check: bool) -> tuple[int, int]:
    """Migrate one database file; returns (records, changed).

    With ``check=True`` nothing is written — the return value reports what
    a real run would change.
    """
    records, dropped = TuningDatabase.parse_file(path)
    raw = json.loads(path.read_text())

    migrated: dict[str, dict] = {}
    changed = 0
    for key, record in records.items():
        target = (
            dataclasses.replace(record, tenant=tenant)
            if record.tenant != tenant
            else record
        )
        new_key = target.key()
        raw_payload = raw["records"].get(key, {})
        if new_key != key or raw_payload.get("tenant") != tenant:
            changed += 1
        migrated[new_key] = target.to_json()

    migrated_dropped: dict[str, float] = {}
    for key, stamp in dropped.items():
        # Tombstone keys cannot be split back into (tenant, family) — hex
        # fingerprints are themselves valid tenant ids — so re-homing into
        # a named namespace prefixes every bare tombstone as-is.
        new_key = key
        if tenant != DEFAULT_TENANT and not key.startswith(f"{tenant}::"):
            new_key = qualify_key(tenant, key)
            changed += 1
        migrated_dropped[new_key] = stamp

    if changed and not check:
        document = {
            "schema": _SCHEMA_VERSION,
            "records": migrated,
            "dropped": migrated_dropped,
        }
        handle, temp_path = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(document, stream, indent=1, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
    return len(records), changed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Rewrite pre-tenant tuning database/replica files with "
        "explicit tenant namespaces (atomic, validate-before-write)."
    )
    parser.add_argument(
        "paths", nargs="+", metavar="DB", help="database or replica files"
    )
    parser.add_argument(
        "--tenant",
        default=DEFAULT_TENANT,
        metavar="NAME",
        help="namespace to (re-)home the records into (default: the shared "
        f"{DEFAULT_TENANT!r} namespace, which keeps every key unchanged)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="report what would change without writing; exit 1 if any file "
        "still needs migrating",
    )
    args = parser.parse_args(argv)
    try:
        validate_tenant(args.tenant)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    pending = 0
    failed = 0
    for name in args.paths:
        path = Path(name)
        try:
            total, changed = migrate_file(path, args.tenant, args.check)
        except TuningError as error:
            print(f"{path}: NOT migrated — {error}", file=sys.stderr)
            failed += 1
            continue
        if changed == 0:
            print(f"{path}: up to date ({total} records)")
        elif args.check:
            print(f"{path}: needs migration ({changed} of {total} entries)")
            pending += 1
        else:
            print(
                f"{path}: migrated {changed} entries "
                f"({total} records -> tenant {args.tenant!r})"
            )
    if failed:
        return 2
    return 1 if args.check and pending else 0


if __name__ == "__main__":
    sys.exit(main())
